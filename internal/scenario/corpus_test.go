package scenario

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

var update = flag.Bool("update", false, "regenerate scenarios/ corpus files and the pinned corpus IDs")

// corpusDir is the shipped corpus, relative to this package.
const corpusDir = "../../scenarios"

// corpusIDFile pins each corpus preset's content ID.
const corpusIDFile = "testdata/corpus_ids.json"

// TestCorpusGolden is the golden test over the shipped adversarial corpus:
// every file under scenarios/ must load, validate, match its builder's Save
// output byte for byte, and carry the pinned content ID — and the directory
// must contain exactly the corpus, nothing more or less. Run with -update to
// regenerate the files and the ID pins after an intentional change.
func TestCorpusGolden(t *testing.T) {
	specs := Corpus()
	if len(specs) < 12 {
		t.Fatalf("corpus has %d presets, want >= 12", len(specs))
	}

	wantBytes := make(map[string][]byte, len(specs))
	wantIDs := make(map[string]string, len(specs))
	for _, s := range specs {
		if s.Name == "" {
			t.Fatal("corpus spec without a name")
		}
		if _, dup := wantBytes[s.Name]; dup {
			t.Fatalf("duplicate corpus name %q", s.Name)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("corpus spec %q invalid: %v", s.Name, err)
		}
		var buf bytes.Buffer
		if err := s.Save(&buf); err != nil {
			t.Fatalf("corpus spec %q: %v", s.Name, err)
		}
		wantBytes[s.Name] = buf.Bytes()
		wantIDs[s.Name] = s.ID()
	}

	if *update {
		if err := os.MkdirAll(corpusDir, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, data := range wantBytes {
			if err := os.WriteFile(filepath.Join(corpusDir, name+".json"), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		if err := os.MkdirAll(filepath.Dir(corpusIDFile), 0o755); err != nil {
			t.Fatal(err)
		}
		pinned, err := json.MarshalIndent(wantIDs, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(corpusIDFile, append(pinned, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// The directory holds exactly the corpus.
	entries, err := filepath.Glob(filepath.Join(corpusDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	onDisk := make(map[string]bool, len(entries))
	for _, path := range entries {
		name := filepath.Base(path)
		name = name[:len(name)-len(".json")]
		onDisk[name] = true
		want, ok := wantBytes[name]
		if !ok {
			t.Errorf("scenarios/%s.json has no corpus builder", name)
			continue
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("scenarios/%s.json differs from its builder output (run go test ./internal/scenario -run TestCorpusGolden -update)", name)
		}
		spec, err := LoadFile(path)
		if err != nil {
			t.Errorf("scenarios/%s.json does not load: %v", name, err)
			continue
		}
		if spec.ID() != wantIDs[name] {
			t.Errorf("scenarios/%s.json ID %s != builder ID %s", name, spec.ID(), wantIDs[name])
		}
	}
	for name := range wantBytes {
		if !onDisk[name] {
			t.Errorf("corpus preset %q missing from scenarios/ (run with -update)", name)
		}
	}

	// The content IDs are pinned: an accidental hash move fails here even if
	// files and builders moved together.
	pinnedRaw, err := os.ReadFile(corpusIDFile)
	if err != nil {
		t.Fatalf("pinned corpus IDs unreadable (run with -update): %v", err)
	}
	var pinned map[string]string
	if err := json.Unmarshal(pinnedRaw, &pinned); err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(wantIDs))
	for name := range wantIDs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if pinned[name] != wantIDs[name] {
			t.Errorf("corpus %q ID moved: pinned %s, built %s", name, pinned[name], wantIDs[name])
		}
	}
	if len(pinned) != len(wantIDs) {
		t.Errorf("pinned ID count %d != corpus size %d", len(pinned), len(wantIDs))
	}
}

// TestBaselineIDsUnchanged pins the content IDs of every pre-corpus scenario:
// the attack-block and strike-slot fields are omitempty, so extending the
// spec must not move a single existing hash. These values were captured
// before the attack-surface extension landed.
func TestBaselineIDsUnchanged(t *testing.T) {
	want := map[string]string{
		"fig3":        "sc-ad77147beb56524c",
		"fig4":        "sc-fd7ed4dd56822272",
		"fig5":        "sc-592652a5f9cab32d",
		"fig6":        "sc-b915c2b1f0770f21",
		"scale500":    "sc-69fe7f570f758727",
		"serve-smoke": "sc-e46abfc453e9ac04",
		"table1":      "sc-1af9824ccaa49f19",
	}
	for name, id := range want {
		spec, err := Preset(name)
		if err != nil {
			t.Fatalf("Preset(%q): %v", name, err)
		}
		if got := spec.ID(); got != id {
			t.Errorf("Preset(%q) ID moved: %s, want %s", name, got, id)
		}
	}
	if got := Default(500, 42).ID(); got != "sc-1bbdd480b4b3125e" {
		t.Errorf("Default(500,42) ID moved: %s", got)
	}
	if got := Default(16, 42).ID(); got != "sc-e751800526855af8" {
		t.Errorf("Default(16,42) ID moved: %s", got)
	}
}
