package scenario

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzLoadSpec exercises the scenario JSON loader with arbitrary input: it
// must never panic, and any spec it accepts must round-trip through Save
// and reload to the same content hash — the ID is the scenario's name, so a
// save/load cycle may never silently rename an experiment.
func FuzzLoadSpec(f *testing.F) {
	var seedBuf bytes.Buffer
	if err := Default(20, 42).Save(&seedBuf); err != nil {
		f.Fatal(err)
	}
	f.Add(seedBuf.String())
	withFaults := Default(20, 42)
	withFaults.Faults = &Faults{DropoutRate: 0.02, StalePriceRate: 0.05}
	seedBuf.Reset()
	if err := withFaults.Save(&seedBuf); err != nil {
		f.Fatal(err)
	}
	f.Add(seedBuf.String())
	withAttack := Default(20, 42)
	withAttack.Attack = Attack{Kind: "false-reading", From: 22, To: 2, MagnitudeKW: 0.8}
	withAttack.Campaign.StrikeSlots = []int{2, 8, 14, 20}
	seedBuf.Reset()
	if err := withAttack.Save(&seedBuf); err != nil {
		f.Fatal(err)
	}
	f.Add(seedBuf.String())
	adaptive := Default(20, 42)
	adaptive.Attack = Attack{Kind: "adaptive", From: 16, To: 19, Margin: 0.9}
	seedBuf.Reset()
	if err := adaptive.Save(&seedBuf); err != nil {
		f.Fatal(err)
	}
	f.Add(seedBuf.String())
	f.Add(`{"n": 3}`)
	f.Add(`{"n": 20, "seed": 1, "unknown_field": true}`)
	f.Add(`garbage`)
	f.Add(`{"n": 20, "faults": {"dropout_rate": 2.5}}`)
	f.Add(`{"n": 20, "attack": {"kind": "delay", "slots": 24}}`)
	f.Add(`{"n": 20, "attack": {"kind": "ramp", "from": 12, "to": 20, "factor": -1}}`)
	f.Add(`{"n": 20, "campaign": {"hack_prob": 0.1, "batch_lo": 1, "batch_hi": 2, "strike_slots": [8, 2]}}`)

	f.Fuzz(func(t *testing.T, input string) {
		s, err := Load(strings.NewReader(input))
		if err != nil {
			return
		}
		// Accepted specs are valid by Load's contract.
		if err := s.Validate(); err != nil {
			t.Fatalf("accepted spec fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := s.Save(&buf); err != nil {
			t.Fatalf("accepted spec failed to serialize: %v", err)
		}
		again, err := Load(&buf)
		if err != nil {
			t.Fatalf("round trip failed to load: %v", err)
		}
		if again.ID() != s.ID() {
			t.Fatalf("round trip changed content hash %s -> %s", s.ID(), again.ID())
		}
	})
}
