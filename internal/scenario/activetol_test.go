package scenario

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// TestActiveTolIDSemantics pins the hash rule decided for the active-set
// knob: zero (the reference semantics) is omitted from the canonical JSON —
// so every pre-existing spec keeps its recorded ID — while any non-zero value
// is content and moves the hash, exactly like JacobiBlock.
func TestActiveTolIDSemantics(t *testing.T) {
	base := Default(500, 42)
	if base.Game.ActiveTol != 0 {
		t.Fatalf("default ActiveTol = %v, want 0", base.Game.ActiveTol)
	}

	blob, err := json.Marshal(base.Game)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(blob), "active_tol") {
		t.Fatalf("zero ActiveTol serialized (%s): pre-existing spec IDs would change", blob)
	}

	tuned := base
	tuned.Game.ActiveTol = 0.05
	if tuned.ID() == base.ID() {
		t.Fatal("non-zero ActiveTol did not change the ID")
	}
	blob, err = json.Marshal(tuned.Game)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), `"active_tol":0.05`) {
		t.Fatalf("non-zero ActiveTol missing from canonical JSON: %s", blob)
	}
}

func TestActiveTolValidateAndLowering(t *testing.T) {
	for _, bad := range []float64{-0.1, math.NaN(), math.Inf(1)} {
		s := Default(100, 1)
		s.Game.ActiveTol = bad
		if s.Validate() == nil {
			t.Errorf("Validate accepted ActiveTol %v", bad)
		}
	}

	s := Default(100, 1)
	s.Game.ActiveTol = 0.05
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate rejected ActiveTol 0.05: %v", err)
	}
	if got := s.CommunityConfig().GameActiveTol; got != 0.05 {
		t.Errorf("CommunityConfig.GameActiveTol = %v, want 0.05", got)
	}
	if got := s.GameConfig(true).ActiveTol; got != 0.05 {
		t.Errorf("GameConfig.ActiveTol = %v, want 0.05", got)
	}
	if ec := s.ExperimentsConfig(); ec.ActiveTol != 0.05 {
		t.Errorf("ExperimentsConfig.ActiveTol = %v, want 0.05", ec.ActiveTol)
	}
}
