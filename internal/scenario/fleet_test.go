package scenario

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"nmdetect/internal/fleet"
)

// nil fleet block, all-zero block and an explicit width-1 block all select
// the direct single-community path, and the ID canonicalises all three to
// the pre-fleet hash. A width >= 2 is content and moves the ID.
func TestFleetIDCanonicalisation(t *testing.T) {
	base := Default(500, 42)
	zero := base
	zero.Fleet = &Fleet{}
	one := base
	one.Fleet = &Fleet{Communities: 1}
	if zero.ID() != base.ID() || one.ID() != base.ID() {
		t.Fatalf("degenerate fleet blocks moved the ID: base %s zero %s one %s",
			base.ID(), zero.ID(), one.ID())
	}
	wide := base
	wide.Fleet = &Fleet{Communities: 2}
	if wide.ID() == base.ID() {
		t.Fatal("fleet width 2 is content but did not move the ID")
	}
	wider := base
	wider.Fleet = &Fleet{Communities: 3}
	if wider.ID() == wide.ID() {
		t.Fatal("fleet widths 2 and 3 hash identically")
	}
}

func TestFleetRoundTripAndOmission(t *testing.T) {
	spec := Default(120, 7)
	spec.Fleet = &Fleet{Communities: 4}
	var buf bytes.Buffer
	if err := spec.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec, back) {
		t.Fatalf("round trip changed the spec:\n orig %+v\n back %+v", spec, back)
	}

	// Without a fleet block the key stays out of the JSON entirely, so
	// pre-fleet scenario files and freshly saved ones stay byte-compatible.
	var plain bytes.Buffer
	if err := Default(120, 7).Save(&plain); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.String(), "fleet") {
		t.Fatalf("fleet key emitted for a spec without a fleet block:\n%s", plain.String())
	}
}

func TestFleetCommunities(t *testing.T) {
	for _, tc := range []struct {
		block *Fleet
		want  int
	}{
		{nil, 1},
		{&Fleet{}, 1},
		{&Fleet{Communities: 1}, 1},
		{&Fleet{Communities: 5}, 5},
	} {
		s := Default(100, 1)
		s.Fleet = tc.block
		if got := s.FleetCommunities(); got != tc.want {
			t.Errorf("FleetCommunities() with block %+v = %d, want %d", tc.block, got, tc.want)
		}
	}
}

func TestValidateRejectsNegativeFleet(t *testing.T) {
	s := Default(100, 1)
	s.Fleet = &Fleet{Communities: -1}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "fleet") {
		t.Fatalf("Validate() = %v, want fleet width rejection", err)
	}
}

func TestCommunitySpec(t *testing.T) {
	base := Default(100, 42)
	base.Name = "paper"
	base.Fleet = &Fleet{Communities: 3}
	for i := 0; i < 3; i++ {
		member := base.CommunitySpec(i)
		if member.Seed != fleet.CommunitySeed(42, i) {
			t.Fatalf("community %d seed %d, want derived %d", i, member.Seed, fleet.CommunitySeed(42, i))
		}
		if member.Fleet != nil {
			t.Fatalf("community %d kept the fleet block", i)
		}
		if want := "paper/c00" + string(rune('0'+i)); member.Name != want {
			t.Fatalf("community %d name %q, want %q", i, member.Name, want)
		}
		// Everything else is the shared world.
		stripped := member
		stripped.Seed, stripped.Name = base.Seed, base.Name
		stripped.Fleet = base.Fleet
		if !reflect.DeepEqual(stripped, base) {
			t.Fatalf("community %d diverged beyond seed/name/fleet:\n%+v\n%+v", i, member, base)
		}
	}
	anon := Default(100, 42)
	if got := anon.CommunitySpec(1).Name; got != "" {
		t.Fatalf("unnamed spec grew a community name %q", got)
	}
}

func TestFleetConfigLowering(t *testing.T) {
	spec := Default(80, 9)
	spec.Fleet = &Fleet{Communities: 4}
	spec.Horizon.MonitorDays = 17
	cfg, err := spec.FleetConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Communities != 4 || cfg.Size != 80 || cfg.BaseSeed != 9 || cfg.Days != 17 {
		t.Fatalf("lowered shape: %+v", cfg)
	}
	if cfg.Detector != fleet.DetectorAware || !cfg.Enforce {
		t.Fatalf("lowered defaults: detector %q enforce %v", cfg.Detector, cfg.Enforce)
	}
	opts, err := spec.CoreOptions()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cfg.Base, opts) {
		t.Fatalf("fleet base diverged from CoreOptions:\n%+v\n%+v", cfg.Base, opts)
	}
	// Runtime knobs stay with the caller.
	if cfg.Workers != 0 || cfg.CheckpointDir != "" || cfg.CheckpointEvery != 0 {
		t.Fatalf("runtime knobs leaked into the lowering: %+v", cfg)
	}
}
