package scenario

import (
	"math"
	"strings"
	"testing"
)

// The faults block is content when non-zero, but its absence and an all-zero
// block must canonicalise to the same hash — adding the feature may not
// rename any existing scenario.
func TestFaultsBlockIDSemantics(t *testing.T) {
	base := Default(100, 42)
	zeroed := base
	zeroed.Faults = &Faults{}
	if zeroed.ID() != base.ID() {
		t.Fatalf("all-zero faults block changed the ID: %s vs %s", zeroed.ID(), base.ID())
	}
	faulty := base
	faulty.Faults = &Faults{DropoutRate: 0.02}
	if faulty.ID() == base.ID() {
		t.Fatal("non-zero faults block did not change the ID")
	}
}

func TestFaultsBlockLowering(t *testing.T) {
	spec := Default(100, 42)
	if !spec.CommunityConfig().Faults.IsZero() {
		t.Fatal("spec without faults block lowered to a faulty engine")
	}
	spec.Faults = &Faults{DropoutRate: 0.1, StalePriceRate: 0.05, PVOutageRate: 0.02, PVOutageSlots: 3}
	cc := spec.CommunityConfig()
	if cc.Faults.Seed != spec.Seed {
		t.Fatalf("fault seed %d, want scenario seed %d", cc.Faults.Seed, spec.Seed)
	}
	if cc.Faults.DropoutRate != 0.1 || cc.Faults.StalePriceRate != 0.05 ||
		cc.Faults.PVOutageRate != 0.02 || cc.Faults.PVOutageSlots != 3 {
		t.Fatalf("fault lowering lost values: %+v", cc.Faults)
	}
	ec := spec.ExperimentsConfig()
	if ec.Faults != cc.Faults {
		t.Fatalf("experiments lowering diverged: %+v vs %+v", ec.Faults, cc.Faults)
	}
}

func TestFaultsBlockValidation(t *testing.T) {
	spec := Default(100, 42)
	spec.Faults = &Faults{DropoutRate: 1.5}
	if err := spec.Validate(); err == nil {
		t.Error("out-of-range dropout rate accepted")
	}
	spec.Faults = &Faults{SpikeKW: -1, CorruptRate: 0.1}
	if err := spec.Validate(); err == nil {
		t.Error("negative spike magnitude accepted")
	}
	spec.Faults = &Faults{DropoutRate: math.NaN()}
	if err := spec.Validate(); err == nil {
		t.Error("NaN rate accepted")
	}
}

func TestValidateRejectsNonFiniteSpec(t *testing.T) {
	cases := map[string]func(*Spec){
		"NaN sell-back": func(s *Spec) { s.Tariff.SellBackW = math.NaN() },
		"Inf sigma":     func(s *Spec) { s.PV.ForecastSigma = math.Inf(1) },
		"NaN noise":     func(s *Spec) { s.PV.MeasurementNoise = math.NaN() },
		"NaN tau":       func(s *Spec) { s.Detector.FlagTau = math.NaN() },
		"NaN delta":     func(s *Spec) { s.Detector.DeltaPAR = math.NaN() },
		"NaN calib":     func(s *Spec) { s.Detector.CalibFrac = math.NaN() },
		"NaN hack prob": func(s *Spec) { s.Campaign.HackProb = math.NaN() },
		"NaN factor":    func(s *Spec) { s.Attack.Kind = "scale"; s.Attack.Factor = math.NaN() },
	}
	for name, mutate := range cases {
		spec := Default(100, 1)
		mutate(&spec)
		if err := spec.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a non-finite spec", name)
		}
	}
}

// A spec with a faults block survives the save/load cycle with the block
// intact; one without the block stays without it (omitempty).
func TestFaultsBlockRoundTrip(t *testing.T) {
	spec := Default(100, 42)
	spec.Faults = &Faults{DropoutRate: 0.02, SpikeKW: 2}
	var buf strings.Builder
	if err := spec.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"faults\"") {
		t.Fatal("faults block missing from the encoding")
	}
	back, err := Load(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Faults == nil || *back.Faults != *spec.Faults {
		t.Fatalf("faults block changed in round trip: %+v", back.Faults)
	}

	plain := Default(100, 42)
	buf.Reset()
	if err := plain.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "\"faults\"") {
		t.Fatal("absent faults block serialized anyway")
	}
}
