package scenario

import "sort"

// The adversarial corpus world: one mid-size community, one seed, so every
// corpus preset differs from its siblings in the attack surface alone and
// detection results across the corpus are attributable to the attack.
const (
	corpusN    = 100
	corpusSeed = 42
)

// corpusAttacks enumerates the corpus, one entry per attack archetype
// variant. Each mutation edits only the attack block and (for the
// coordinated entries) the campaign's strike timing — never the world.
var corpusAttacks = map[string]func(*Spec){
	// The control: an active campaign delivering a harmless payload. The
	// detector should stay quiet; any inspections here are pure false alarms.
	"attack-none-control": func(s *Spec) { s.Attack = Attack{Kind: "none"} },
	// The paper's Figure 5 attack: a free evening window attracts every
	// schedulable load.
	"attack-zero-peak": func(s *Spec) { s.Attack = Attack{Kind: "zero", From: 16, To: 17} },
	// The same zeroing payload wrapped past midnight — the regression
	// scenario for wrapping windows.
	"attack-zero-night-wrap": func(s *Spec) { s.Attack = Attack{Kind: "zero", From: 22, To: 2} },
	// Half-price evening: subtler than zeroing, still pulls load in.
	"attack-scale-half-evening": func(s *Spec) {
		s.Attack = Attack{Kind: "scale", From: 16, To: 19, Factor: 0.5}
	},
	// Price surge on the morning slots: repels load instead of attracting it.
	"attack-scale-surge-morning": func(s *Spec) {
		s.Attack = Attack{Kind: "scale", From: 6, To: 9, Factor: 2}
	},
	// Creeping discount that ramps to 70% off across the afternoon, avoiding
	// the step edge a windowed scale leaves in the price curve.
	"attack-ramp-evening-creep": func(s *Spec) {
		s.Attack = Attack{Kind: "ramp", From: 12, To: 20, Factor: 0.3}
	},
	// Stale-price replay: hacked meters schedule against a 3-hour-old tariff.
	"attack-delay-stale-3h": func(s *Spec) { s.Attack = Attack{Kind: "delay", Slots: 3} },
	// The mirror image: the signal arrives 2 hours early.
	"attack-delay-advance-2h": func(s *Spec) { s.Attack = Attack{Kind: "delay", Slots: -2} },
	// Fabricated DSM signal: noon discount compensated outside the window so
	// the day's average tariff is unchanged.
	"attack-load-shift-noon": func(s *Spec) {
		s.Attack = Attack{Kind: "load-shift", From: 10, To: 14, Factor: 0.4}
	},
	// The bill-maximizing inversion of [8]: cheapest slots become dearest.
	"attack-invert-billmax": func(s *Spec) { s.Attack = Attack{Kind: "invert"} },
	// Monitoring-channel falsification: phantom daytime PV export, price
	// untouched.
	"attack-false-reading-day": func(s *Spec) {
		s.Attack = Attack{Kind: "false-reading", From: 10, To: 15, MagnitudeKW: 0.8}
	},
	// The same lie overnight, wrapped past midnight, at lower magnitude.
	"attack-false-reading-night-wrap": func(s *Spec) {
		s.Attack = Attack{Kind: "false-reading", From: 22, To: 2, MagnitudeKW: 0.5}
	},
	// Coordinated timing: the classic zero-window payload delivered in four
	// synchronized waves instead of the Bernoulli drip.
	"attack-coordinated-wave": func(s *Spec) {
		s.Attack = Attack{Kind: "zero", From: 16, To: 17}
		s.Campaign.StrikeSlots = []int{2, 8, 14, 20}
	},
	// A faster blitz: strikes every three hours with a subtler payload.
	"attack-coordinated-blitz": func(s *Spec) {
		s.Attack = Attack{Kind: "scale", From: 16, To: 19, Factor: 0.5}
		s.Campaign.StrikeSlots = []int{0, 3, 6, 9, 12, 15, 18, 21}
	},
	// The strategic attacker at the default 0.9 evasion margin: tunes a
	// scale-family payload just under the flagger threshold.
	"attack-adaptive-evade": func(s *Spec) {
		s.Attack = Attack{Kind: "adaptive", From: 16, To: 19, Margin: 0.9}
	},
	// A more cautious adaptive attacker keeping half the threshold in hand.
	"attack-adaptive-cautious": func(s *Spec) {
		s.Attack = Attack{Kind: "adaptive", From: 16, To: 19, Margin: 0.5}
	},
	// The adaptive attacker on the monitoring channel: tunes a phantom
	// daytime export of up to 2 kW down to just under the flagger threshold
	// — theft sized to the detector.
	"attack-adaptive-theft": func(s *Spec) {
		s.Attack = Attack{Kind: "adaptive", From: 10, To: 15, MagnitudeKW: 2, Margin: 0.9}
	},
}

// Corpus returns the adversarial scenario corpus shipped under scenarios/ at
// the repository root: one preset per attack archetype variant, every one a
// Default(corpusN, corpusSeed) world differing only in its attack surface,
// in stable name order. Every spec validates; the golden corpus test pins
// each preset's file bytes and content ID.
func Corpus() []Spec {
	names := make([]string, 0, len(corpusAttacks))
	for name := range corpusAttacks {
		names = append(names, name)
	}
	sort.Strings(names)
	specs := make([]Spec, len(names))
	for i, name := range names {
		s := Default(corpusN, corpusSeed)
		s.Name = name
		corpusAttacks[name](&s)
		specs[i] = s
	}
	return specs
}
