package billing

import (
	"math"
	"testing"

	"nmdetect/internal/tariff"
	"nmdetect/internal/timeseries"
)

func q(t *testing.T, w float64) tariff.Quadratic {
	t.Helper()
	quad, err := tariff.NewQuadratic(w)
	if err != nil {
		t.Fatal(err)
	}
	return quad
}

func TestSettleBuyersOnly(t *testing.T) {
	price := timeseries.Series{0.1, 0.2}
	trading := [][]float64{{1, 2}, {3, 2}}
	s, err := Settle(q(t, 2), price, trading)
	if err != nil {
		t.Fatal(err)
	}
	// Totals {4, 4}; customer 0: 0.1·4·1 + 0.2·4·2 = 0.4+1.6 = 2.0.
	if math.Abs(s.Bills[0]-2.0) > 1e-12 {
		t.Fatalf("bill 0 = %v", s.Bills[0])
	}
	// Customer 1: 0.1·4·3 + 0.2·4·2 = 1.2+1.6 = 2.8.
	if math.Abs(s.Bills[1]-2.8) > 1e-12 {
		t.Fatalf("bill 1 = %v", s.Bills[1])
	}
	if math.Abs(s.UtilityRevenue-4.8) > 1e-12 || math.Abs(s.TotalBilled-4.8) > 1e-12 {
		t.Fatalf("revenue = %v, billed = %v", s.UtilityRevenue, s.TotalBilled)
	}
	if s.TotalCredited != 0 {
		t.Fatalf("credited = %v", s.TotalCredited)
	}
	if s.NMSupportCost != 0 {
		t.Fatalf("NM support cost with no sellers = %v", s.NMSupportCost)
	}
	if s.PeakSlot != 0 { // equal totals: first max wins
		t.Fatalf("peak slot = %d", s.PeakSlot)
	}
}

func TestSettleWithSeller(t *testing.T) {
	price := timeseries.Series{0.1}
	// Customer 1 sells 2 units while the community nets +4.
	trading := [][]float64{{6}, {-2}}
	w := 2.0
	s, err := Settle(q(t, w), price, trading)
	if err != nil {
		t.Fatal(err)
	}
	marginal := 0.1 * 4
	// Buyer pays 6·marginal = 2.4; seller earns 2·marginal/W = 0.4.
	if math.Abs(s.Bills[0]-6*marginal) > 1e-12 {
		t.Fatalf("buyer bill = %v", s.Bills[0])
	}
	if math.Abs(s.Bills[1]-(-2*marginal/w)) > 1e-12 {
		t.Fatalf("seller bill = %v", s.Bills[1])
	}
	if math.Abs(s.TotalCredited-0.4) > 1e-12 {
		t.Fatalf("credited = %v", s.TotalCredited)
	}
	// NM support: 2 sold units × marginal × (1 − 1/W) = 2·0.4·0.5 = 0.4.
	if math.Abs(s.NMSupportCost-0.4) > 1e-12 {
		t.Fatalf("support cost = %v", s.NMSupportCost)
	}
}

func TestSettleFullRetailNoSupportCost(t *testing.T) {
	// W = 1 (full retail net metering): no spread, no support cost.
	price := timeseries.Series{0.1}
	trading := [][]float64{{6}, {-2}}
	s, err := Settle(q(t, 1), price, trading)
	if err != nil {
		t.Fatal(err)
	}
	if s.NMSupportCost != 0 {
		t.Fatalf("support cost at W=1 = %v", s.NMSupportCost)
	}
}

func TestSettleOversupplySlot(t *testing.T) {
	// Community is a net seller: the marginal price collapses; nobody pays.
	price := timeseries.Series{0.1}
	trading := [][]float64{{1}, {-5}}
	s, err := Settle(q(t, 2), price, trading)
	if err != nil {
		t.Fatal(err)
	}
	if s.Bills[0] != 0 || s.Bills[1] != 0 || s.NMSupportCost != 0 {
		t.Fatalf("oversupply settlement = %+v", s)
	}
}

func TestSettleErrors(t *testing.T) {
	if _, err := Settle(q(t, 2), nil, [][]float64{{1}}); err == nil {
		t.Error("empty price accepted")
	}
	if _, err := Settle(q(t, 2), timeseries.Series{1}, nil); err == nil {
		t.Error("no customers accepted")
	}
	if _, err := Settle(q(t, 2), timeseries.Series{1, 2}, [][]float64{{1}}); err == nil {
		t.Error("ragged trading accepted")
	}
}

func TestBillDelta(t *testing.T) {
	clean := &Settlement{Bills: []float64{2, 3}}
	attacked := &Settlement{Bills: []float64{3, 4.5}}
	deltas, rel, err := BillDelta(clean, attacked)
	if err != nil {
		t.Fatal(err)
	}
	if deltas[0] != 1 || deltas[1] != 1.5 {
		t.Fatalf("deltas = %v", deltas)
	}
	if math.Abs(rel-0.5) > 1e-12 {
		t.Fatalf("relative increase = %v", rel)
	}
}

func TestBillDeltaErrors(t *testing.T) {
	if _, _, err := BillDelta(nil, &Settlement{}); err == nil {
		t.Error("nil settlement accepted")
	}
	if _, _, err := BillDelta(&Settlement{Bills: []float64{1}}, &Settlement{Bills: []float64{1, 2}}); err == nil {
		t.Error("mismatched settlements accepted")
	}
}

func TestBillDeltaZeroBase(t *testing.T) {
	clean := &Settlement{Bills: []float64{1, -1}}
	attacked := &Settlement{Bills: []float64{2, 0}}
	_, rel, err := BillDelta(clean, attacked)
	if err != nil {
		t.Fatal(err)
	}
	if rel != 0 {
		t.Fatalf("zero-base relative = %v", rel)
	}
}
