// Package billing settles a scheduled day under the paper's quadratic
// tariff: each customer's bill per Eqn 2 (buy at the marginal price pₕ·Σy,
// sell at the discounted pₕ/W·Σy), the utility's revenue, and the cost the
// utility bears for supporting net metering — Section 2.3 observes that the
// spread between the retail and sell-back rates "is cost of the utility due
// to supporting net metering", and this package makes that quantity
// explicit.
//
// Billing is the measurement layer for the bill-increase attacks of [8]:
// the community schedules against a manipulated price but is *settled*
// against the published one, so the attack's monetary damage is the
// difference between the settled bills of the attacked and clean schedules.
package billing

import (
	"errors"
	"fmt"

	"nmdetect/internal/tariff"
	"nmdetect/internal/timeseries"
)

// Settlement is the monetary outcome of one scheduled day.
type Settlement struct {
	// Bills[n] is customer n's net bill (negative = the customer was paid).
	Bills []float64
	// TotalBilled is Σₙ max(Bills[n], 0) — gross customer payments.
	TotalBilled float64
	// TotalCredited is Σₙ max(−Bills[n], 0) — gross net-metering payouts.
	TotalCredited float64
	// UtilityRevenue is Σₙ Bills[n].
	UtilityRevenue float64
	// NMSupportCost is the utility's net-metering subsidy: for every sold
	// unit, the spread between the retail marginal price and the sell-back
	// rate, summed over the day.
	NMSupportCost float64
	// PeakSlot is the slot of maximum community net purchase.
	PeakSlot int
}

// Settle computes the settlement for per-customer trading profiles y[n][h]
// under the published price. All profiles must span the price's horizon.
func Settle(q tariff.Quadratic, price timeseries.Series, trading [][]float64) (*Settlement, error) {
	if len(price) == 0 {
		return nil, errors.New("billing: empty price")
	}
	if len(trading) == 0 {
		return nil, errors.New("billing: no customers")
	}
	h := len(price)
	for n, y := range trading {
		if len(y) != h {
			return nil, fmt.Errorf("billing: customer %d has %d slots, want %d", n, len(y), h)
		}
	}

	totals := make([]float64, h)
	for t := 0; t < h; t++ {
		for n := range trading {
			totals[t] += trading[n][t]
		}
	}

	s := &Settlement{Bills: make([]float64, len(trading))}
	peak := timeseries.Series(totals)
	_, s.PeakSlot = peak.Max()

	for n := range trading {
		bill := 0.0
		for t := 0; t < h; t++ {
			bill += q.CustomerCost(price[t], totals[t], trading[n][t])
		}
		s.Bills[n] = bill
		if bill >= 0 {
			s.TotalBilled += bill
		} else {
			s.TotalCredited += -bill
		}
		s.UtilityRevenue += bill
	}

	// NM support cost: for each sold unit the utility pays p/W·Σy to the
	// seller but collects p·Σy from the buyers it resells to — the spread is
	// (p − p/W)·Σy per unit sold... with the paper's convention the utility
	// loses the retail-sellback spread on every sold unit.
	for t := 0; t < h; t++ {
		if totals[t] <= 0 {
			continue // oversupply: spot price collapses, no spread
		}
		sold := 0.0
		for n := range trading {
			if trading[n][t] < 0 {
				sold += -trading[n][t]
			}
		}
		marginal := price[t] * totals[t]
		s.NMSupportCost += sold * marginal * (1 - 1/q.W)
	}
	return s, nil
}

// BillDelta compares two settlements of the same community (e.g. attacked vs
// clean schedules) and returns each customer's bill increase and the
// community-wide relative increase.
func BillDelta(clean, attacked *Settlement) ([]float64, float64, error) {
	if clean == nil || attacked == nil {
		return nil, 0, errors.New("billing: nil settlement")
	}
	if len(clean.Bills) != len(attacked.Bills) {
		return nil, 0, fmt.Errorf("billing: %d vs %d customers", len(clean.Bills), len(attacked.Bills))
	}
	deltas := make([]float64, len(clean.Bills))
	cleanTotal, attackedTotal := 0.0, 0.0
	for n := range deltas {
		deltas[n] = attacked.Bills[n] - clean.Bills[n]
		cleanTotal += clean.Bills[n]
		attackedTotal += attacked.Bills[n]
	}
	rel := 0.0
	if cleanTotal != 0 {
		rel = (attackedTotal - cleanTotal) / cleanTotal
	}
	return deltas, rel, nil
}
