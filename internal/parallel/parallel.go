// Package parallel is the engine-wide bounded worker pool behind every
// concurrent code path of the simulator: the game solver's block-Jacobi
// sweeps, the community engine's clean/attacked solve pair and per-customer
// PV generation, and the cross-entropy optimizer's candidate evaluation.
//
// Two rules keep the concurrency layer compatible with the repository's
// determinism contract (DESIGN.md "Parallel execution & determinism"):
//
//  1. Work items are identified by index, write only to their own index-th
//     slot of pre-sized result slices, and draw randomness exclusively from
//     rng.Sources derived per index — so the assignment of items to
//     goroutines can never influence a result bit.
//  2. The pool is bounded globally, not per call site. Nested parallelism
//     (a parallel engine step launching a parallel game solve launching a
//     parallel CE evaluation) cannot oversubscribe the machine or deadlock:
//     helper goroutines are admitted by a token bucket sized to
//     runtime.NumCPU() by default, and every ForEach caller also executes
//     work on its own goroutine, guaranteeing progress even when the bucket
//     is empty.
//
// Cancellation follows the repository-wide contract (DESIGN.md "Scenario
// spec & cancellation contract"): every entry point takes a context and
// polls ctx.Err() at work-item boundaries — no goroutine blocks on ctx.Done(),
// so cancellation can never change which results a completed call produced,
// only whether the call completes. A cancelled call still releases every
// helper token it acquired before returning.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"nmdetect/internal/obs"
)

// limiter is a token bucket bounding the number of helper goroutines alive
// across the whole process. Helpers release to the limiter they acquired
// from, so swapping the global limiter (SetLimit) can never block a release.
type limiter struct {
	tokens chan struct{}
	limit  int
}

func newLimiter(n int) *limiter {
	if n < 1 {
		n = 1
	}
	l := &limiter{tokens: make(chan struct{}, n), limit: n}
	for i := 0; i < n; i++ {
		l.tokens <- struct{}{}
	}
	return l
}

func (l *limiter) tryAcquire() bool {
	select {
	case <-l.tokens:
		return true
	default:
		return false
	}
}

func (l *limiter) release() { l.tokens <- struct{}{} }

var global atomic.Pointer[limiter]

func init() { global.Store(newLimiter(runtime.NumCPU())) }

// Limit reports the current global helper-goroutine budget.
func Limit() int { return global.Load().limit }

// Outstanding reports how many helper tokens are currently checked out of
// the global bucket. It is zero whenever no ForEach/Do call is in flight —
// the invariant the cancellation tests assert: aborting a call must return
// every token it acquired. (After SetLimit, in-flight work holds tokens of
// the limiter it started with, which this no longer observes.)
func Outstanding() int {
	l := global.Load()
	return l.limit - len(l.tokens)
}

// SetLimit replaces the global helper budget (n < 1 is treated as 1) and
// returns the previous value. In-flight work keeps the budget it started
// with; call it from main() or test setup, not concurrently with heavy work.
func SetLimit(n int) int {
	prev := global.Swap(newLimiter(n)).limit
	return prev
}

// DefaultWorkers is the worker budget a zero Workers knob resolves to.
func DefaultWorkers() int { return runtime.NumCPU() }

// Resolve normalizes a Workers configuration knob: values <= 0 select
// DefaultWorkers(), anything else is returned unchanged.
func Resolve(workers int) int {
	if workers <= 0 {
		return DefaultWorkers()
	}
	return workers
}

// ctxErr reports the context's cancellation state; a nil context is treated
// as never cancelled.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// ForEach runs fn(i) for every i in [0, n) using at most Resolve(workers)
// concurrent executions, the calling goroutine included. The first error in
// index order is returned (later indices may be skipped once an error is
// observed). With workers == 1 (or n == 1) the loop runs inline in index
// order, byte-identical to a plain for loop — the sequential reference path.
//
// The context is polled before every work item: once it is cancelled no new
// item starts and ForEach returns ctx.Err() — unless some fn had already
// failed, in which case that error (first in index order) wins. A nil ctx is
// accepted and never cancels.
//
// fn must be safe for concurrent invocation when workers > 1: distinct
// indices must not write to shared state.
func ForEach(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return ctxErr(ctx)
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctxErr(ctx); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	errs := make([]error, n)
	var next int64
	var failed, cancelled atomic.Bool
	run := func() {
		for {
			if failed.Load() || cancelled.Load() {
				return
			}
			if ctxErr(ctx) != nil {
				cancelled.Store(true)
				return
			}
			i := int(atomic.AddInt64(&next, 1)) - 1
			if i >= n {
				return
			}
			if err := fn(i); err != nil {
				errs[i] = err
				failed.Store(true)
			}
		}
	}

	// Admit up to workers-1 helpers from the global bucket; the caller is
	// the guaranteed worker, so an empty bucket degrades to inline execution
	// instead of deadlocking under nested parallelism.
	l := global.Load()
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		if !l.tryAcquire() {
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer l.release()
			run()
		}()
	}
	// Pool-occupancy sample at fan-out time: how many helper tokens the
	// whole process has checked out right now. Reads only limiter state, so
	// the work items (and their results) are untouched.
	obs.From(ctx).Observe("parallel.occupancy", float64(Outstanding()))
	run()
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if cancelled.Load() {
		return ctx.Err()
	}
	return nil
}

// Do runs the given tasks with at most Resolve(workers) executing
// concurrently and returns the first error in argument order. With
// workers == 1 the tasks run sequentially in order. Cancellation semantics
// match ForEach.
func Do(ctx context.Context, workers int, tasks ...func() error) error {
	return ForEach(ctx, workers, len(tasks), func(i int) error { return tasks[i]() })
}
