package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if Resolve(0) != DefaultWorkers() {
		t.Fatalf("Resolve(0) = %d, want %d", Resolve(0), DefaultWorkers())
	}
	if Resolve(-3) != DefaultWorkers() {
		t.Fatalf("Resolve(-3) = %d", Resolve(-3))
	}
	if Resolve(5) != 5 {
		t.Fatalf("Resolve(5) = %d", Resolve(5))
	}
}

func TestForEachCoversAllIndices(t *testing.T) {
	prev := SetLimit(8)
	defer SetLimit(prev)
	for _, workers := range []int{1, 2, 4, 16} {
		const n = 100
		hits := make([]int64, n)
		if err := ForEach(nil, workers, n, func(i int) error {
			atomic.AddInt64(&hits[i], 1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, h)
			}
		}
	}
}

func TestForEachEmptyAndSingle(t *testing.T) {
	if err := ForEach(nil, 4, 0, func(int) error { return errors.New("boom") }); err != nil {
		t.Fatal("n=0 must not invoke fn")
	}
	ran := false
	if err := ForEach(nil, 4, 1, func(i int) error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("n=1 not executed")
	}
}

func TestForEachSequentialStopsAtFirstError(t *testing.T) {
	var calls int
	err := ForEach(nil, 1, 10, func(i int) error {
		calls++
		if i == 3 {
			return fmt.Errorf("fail at %d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "fail at 3" {
		t.Fatalf("err = %v", err)
	}
	if calls != 4 {
		t.Fatalf("sequential mode ran %d calls after error", calls)
	}
}

func TestForEachParallelReturnsLowestIndexError(t *testing.T) {
	prev := SetLimit(8)
	defer SetLimit(prev)
	// Every index fails; the reported error must deterministically be the
	// lowest index that executed — and index 0 always executes.
	err := ForEach(nil, 8, 50, func(i int) error { return fmt.Errorf("fail at %d", i) })
	if err == nil || err.Error() != "fail at 0" {
		t.Fatalf("err = %v, want fail at 0", err)
	}
}

func TestDoRunsAllTasks(t *testing.T) {
	var a, b int32
	err := Do(nil, 4,
		func() error { atomic.StoreInt32(&a, 1); return nil },
		func() error { atomic.StoreInt32(&b, 2); return nil },
	)
	if err != nil {
		t.Fatal(err)
	}
	if a != 1 || b != 2 {
		t.Fatalf("tasks not run: a=%d b=%d", a, b)
	}
}

func TestSetLimit(t *testing.T) {
	prev := SetLimit(3)
	if Limit() != 3 {
		t.Fatalf("Limit() = %d", Limit())
	}
	if got := SetLimit(prev); got != 3 {
		t.Fatalf("SetLimit returned %d", got)
	}
	// A floor of 1 applies.
	p := SetLimit(0)
	if Limit() != 1 {
		t.Fatalf("Limit() after SetLimit(0) = %d", Limit())
	}
	SetLimit(p)
}

func TestForEachNestedDoesNotDeadlock(t *testing.T) {
	prev := SetLimit(2)
	defer SetLimit(prev)
	var total int64
	err := ForEach(nil, 4, 8, func(i int) error {
		return ForEach(nil, 4, 8, func(j int) error {
			atomic.AddInt64(&total, 1)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != 64 {
		t.Fatalf("nested total = %d", total)
	}
}
