package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// countingCtx cancels itself after its Err method has been polled limit
// times. Done intentionally returns nil: the repository's cancellation
// contract forbids blocking on Done, so any code path that did would
// deadlock loudly here.
type countingCtx struct {
	polls atomic.Int64
	limit int64
}

func (c *countingCtx) Deadline() (time.Time, bool)       { return time.Time{}, false }
func (c *countingCtx) Done() <-chan struct{}             { return nil }
func (c *countingCtx) Value(key interface{}) interface{} { return nil }
func (c *countingCtx) Err() error {
	if c.polls.Add(1) > c.limit {
		return context.Canceled
	}
	return nil
}

func TestForEachPreCancelledRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := ForEach(ctx, 4, 100, func(i int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d items ran after pre-cancellation", ran.Load())
	}
	if out := Outstanding(); out != 0 {
		t.Fatalf("%d helper tokens leaked", out)
	}
}

func TestForEachCancelMidwayStopsEarlyAndReleasesTokens(t *testing.T) {
	const n = 1000
	ctx := &countingCtx{limit: 10}
	var ran atomic.Int64
	err := ForEach(ctx, 4, n, func(i int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The pool polls per work item: once Err flips, no new item may start.
	// A small overshoot is allowed for items already dispatched.
	if got := ran.Load(); got >= n/2 {
		t.Fatalf("cancellation did not stop the loop: %d/%d items ran", got, n)
	}
	if out := Outstanding(); out != 0 {
		t.Fatalf("%d helper tokens leaked after cancellation", out)
	}
}

func TestForEachErrorBeatsCancellation(t *testing.T) {
	// An fn failure observed before cancellation wins over ctx.Err().
	boom := errors.New("boom")
	ctx := &countingCtx{limit: 1 << 60}
	err := ForEach(ctx, 1, 5, func(i int) error {
		if i == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestDoCancelledReleasesTokens(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Do(ctx, 4,
		func() error { return nil },
		func() error { return nil },
	)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out := Outstanding(); out != 0 {
		t.Fatalf("%d helper tokens leaked", out)
	}
}

func TestNestedCancellationLeavesPoolClean(t *testing.T) {
	ctx := &countingCtx{limit: 50}
	err := ForEach(ctx, 4, 64, func(i int) error {
		return ForEach(ctx, 4, 64, func(j int) error { return nil })
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out := Outstanding(); out != 0 {
		t.Fatalf("%d helper tokens leaked from nested cancellation", out)
	}
}
