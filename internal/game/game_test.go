package game

import (
	"context"
	"math"
	"testing"

	"nmdetect/internal/appliance"
	"nmdetect/internal/battery"
	"nmdetect/internal/household"
	"nmdetect/internal/rng"
	"nmdetect/internal/solar"
	"nmdetect/internal/tariff"
	"nmdetect/internal/timeseries"
)

func testTariff(t *testing.T) tariff.Quadratic {
	t.Helper()
	q, err := tariff.NewQuadratic(1.5)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// smallCommunity builds a deterministic 3-customer community for unit tests.
func smallCommunity(t *testing.T) []*household.Customer {
	t.Helper()
	base := make([]float64, 24)
	for h := range base {
		base[h] = 0.4
	}
	mk := func(id int, apps []*appliance.Appliance, pvKW, battKWh float64) *household.Customer {
		c := &household.Customer{ID: id, BaseLoad: append([]float64(nil), base...), Appliances: apps}
		if pvKW > 0 {
			c.Panel = solar.Panel{CapacityKW: pvKW, Orientation: 1}
		}
		if battKWh > 0 {
			c.Battery = battery.New(battKWh)
		}
		if err := c.Validate(24); err != nil {
			t.Fatal(err)
		}
		return c
	}
	return []*household.Customer{
		mk(0, []*appliance.Appliance{
			{Name: "washer", Levels: []float64{0.5, 1.0}, Energy: 2, Start: 8, Deadline: 16},
		}, 5, 10),
		mk(1, []*appliance.Appliance{
			{Name: "ev", Levels: []float64{1.5, 3.0}, Energy: 6, Start: 17, Deadline: 23},
		}, 0, 0),
		mk(2, []*appliance.Appliance{
			{Name: "dishwasher", Levels: []float64{0.6, 1.2}, Energy: 1.2, Start: 18, Deadline: 22},
		}, 4, 8),
	}
}

func flatPrice(v float64) timeseries.Series {
	p := make(timeseries.Series, 24)
	for i := range p {
		p[i] = v
	}
	return p
}

func middayPV(kw float64) []float64 {
	pv := make([]float64, 24)
	for h := 10; h < 16; h++ {
		pv[h] = kw
	}
	return pv
}

func TestSolveWithoutNetMetering(t *testing.T) {
	customers := smallCommunity(t)
	cfg := DefaultConfig(testTariff(t), false)
	res, err := Solve(context.Background(), customers, flatPrice(0.1), nil, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Energy conservation: community load covers base plus task energy.
	wantEnergy := 0.0
	for _, c := range customers {
		wantEnergy += 0.4*24 + c.TotalTaskEnergy()
	}
	if math.Abs(res.Load.Sum()-wantEnergy) > 1e-6 {
		t.Fatalf("community energy %v, want %v", res.Load.Sum(), wantEnergy)
	}
	// Without net metering, grid demand equals consumption.
	for h := range res.Load {
		if math.Abs(res.Load[h]-res.GridDemand[h]) > 1e-9 {
			t.Fatalf("slot %d: load %v != grid demand %v", h, res.Load[h], res.GridDemand[h])
		}
	}
	// No battery trajectories in this mode.
	for _, tr := range res.BatteryTraj {
		if tr != nil {
			t.Fatal("battery trajectory without net metering")
		}
	}
}

func TestSolveSpreadsLoadUnderQuadraticPricing(t *testing.T) {
	// With a flat price and quadratic congestion cost, the scheduled tasks
	// should avoid piling onto a single slot: PAR after scheduling must be
	// lower than a naive earliest-slot placement.
	customers := smallCommunity(t)
	cfg := DefaultConfig(testTariff(t), false)
	res, err := Solve(context.Background(), customers, flatPrice(0.1), nil, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	naive := make(timeseries.Series, 24)
	for _, c := range customers {
		for h := 0; h < 24; h++ {
			naive[h] += c.BaseLoadAt(h)
		}
		for _, a := range c.Appliances {
			remaining := a.Energy
			for h := a.Start; h <= a.Deadline && remaining > 0; h++ {
				x := math.Min(a.MaxLevel(), remaining)
				naive[h] += x
				remaining -= x
			}
		}
	}
	if res.Load.PAR() >= naive.PAR() {
		t.Fatalf("scheduled PAR %v not below naive PAR %v", res.Load.PAR(), naive.PAR())
	}
}

func TestSolveAvoidsExpensiveSlots(t *testing.T) {
	// EV window covers slots 17–23; make 17–19 very expensive.
	customers := smallCommunity(t)[1:2] // EV-only customer
	price := flatPrice(0.05)
	for h := 17; h < 20; h++ {
		price[h] = 5.0
	}
	cfg := DefaultConfig(testTariff(t), false)
	res, err := Solve(context.Background(), customers, price, nil, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	expensive := res.Load[17] + res.Load[18] + res.Load[19] - 3*0.4
	cheap := res.Load[20] + res.Load[21] + res.Load[22] + res.Load[23] - 4*0.4
	if expensive > 1e-6 {
		t.Fatalf("EV energy %v placed in expensive slots (cheap share %v)", expensive, cheap)
	}
}

func TestSolveNetMeteringUsesSolar(t *testing.T) {
	customers := smallCommunity(t)
	pv := [][]float64{middayPV(4), make([]float64, 24), middayPV(3)}
	cfg := DefaultConfig(testTariff(t), true)
	res, err := Solve(context.Background(), customers, flatPrice(0.1), pv, cfg, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	// Midday grid demand must drop below consumption (solar self-use).
	middayDemand, middayLoad := 0.0, 0.0
	for h := 10; h < 16; h++ {
		middayDemand += res.GridDemand[h]
		middayLoad += res.Load[h]
	}
	if middayDemand >= middayLoad {
		t.Fatalf("midday grid demand %v not reduced below load %v", middayDemand, middayLoad)
	}
}

func TestSolveNetMeteringLowersCosts(t *testing.T) {
	customers := smallCommunity(t)
	pv := [][]float64{middayPV(4), make([]float64, 24), middayPV(3)}
	q := testTariff(t)

	noNM, err := Solve(context.Background(), customers, flatPrice(0.1), nil, DefaultConfig(q, false), nil)
	if err != nil {
		t.Fatal(err)
	}
	withNM, err := Solve(context.Background(), customers, flatPrice(0.1), pv, DefaultConfig(q, true), rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	// PV owners (customers 0 and 2) must be better off with net metering.
	for _, i := range []int{0, 2} {
		if withNM.Cost[i] >= noNM.Cost[i] {
			t.Fatalf("customer %d: NM cost %v not below non-NM cost %v", i, withNM.Cost[i], noNM.Cost[i])
		}
	}
}

func TestSolveBatteryTrajectoryValid(t *testing.T) {
	customers := smallCommunity(t)
	pv := [][]float64{middayPV(4), make([]float64, 24), middayPV(3)}
	cfg := DefaultConfig(testTariff(t), true)
	res, err := Solve(context.Background(), customers, flatPrice(0.1), pv, cfg, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range customers {
		tr := res.BatteryTraj[i]
		if c.HasBattery() {
			if tr == nil {
				t.Fatalf("customer %d: missing battery trajectory", i)
			}
			if err := c.Battery.CheckTrajectory(tr); err != nil {
				t.Fatalf("customer %d: %v", i, err)
			}
			if math.Abs(tr[0]-cfg.BatteryInitFrac*c.Battery.Capacity) > 1e-9 {
				t.Fatalf("customer %d: initial SoC %v", i, tr[0])
			}
		} else if tr != nil {
			t.Fatalf("customer %d: unexpected trajectory", i)
		}
	}
}

func TestSolveTradingConsistentWithEqn1(t *testing.T) {
	customers := smallCommunity(t)
	pv := [][]float64{middayPV(4), make([]float64, 24), middayPV(3)}
	cfg := DefaultConfig(testTariff(t), true)
	res, err := Solve(context.Background(), customers, flatPrice(0.1), pv, cfg, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range customers {
		traj := res.BatteryTraj[i]
		if traj == nil {
			traj = battery.FlatTrajectory(0, 24)
		}
		y, err := battery.ImpliedTrading(traj, res.CustomerLoad[i], pv[i])
		if err != nil {
			t.Fatal(err)
		}
		for h := range y {
			if math.Abs(y[h]-res.CustomerTrading[i][h]) > 1e-6 {
				t.Fatalf("customer %d slot %d: Eqn 1 trading %v != reported %v (battery=%v)",
					i, h, y[h], res.CustomerTrading[i][h], c.HasBattery())
			}
		}
	}
}

func TestSolveDeterministic(t *testing.T) {
	customers := smallCommunity(t)
	pv := [][]float64{middayPV(4), make([]float64, 24), middayPV(3)}
	cfg := DefaultConfig(testTariff(t), true)
	a, err := Solve(context.Background(), customers, flatPrice(0.1), pv, cfg, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(context.Background(), customers, flatPrice(0.1), pv, cfg, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	for h := range a.Load {
		if a.Load[h] != b.Load[h] || a.GridDemand[h] != b.GridDemand[h] {
			t.Fatal("same seed produced different solutions")
		}
	}
}

func TestSolveInputValidation(t *testing.T) {
	customers := smallCommunity(t)
	cfg := DefaultConfig(testTariff(t), false)
	if _, err := Solve(context.Background(), nil, flatPrice(0.1), nil, cfg, nil); err == nil {
		t.Error("empty community accepted")
	}
	if _, err := Solve(context.Background(), customers, flatPrice(0.1)[:12], nil, cfg, nil); err == nil {
		t.Error("short horizon accepted")
	}
	nmCfg := DefaultConfig(testTariff(t), true)
	if _, err := Solve(context.Background(), customers, flatPrice(0.1), [][]float64{{1}}, nmCfg, rng.New(1)); err == nil {
		t.Error("bad pv shape accepted")
	}
	if _, err := Solve(context.Background(), customers, flatPrice(0.1), [][]float64{middayPV(1), middayPV(1), middayPV(1)}, nmCfg, nil); err == nil {
		t.Error("nil source accepted with net metering")
	}
	bad := cfg
	bad.MaxSweeps = 0
	if _, err := Solve(context.Background(), customers, flatPrice(0.1), nil, bad, nil); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestSolveConvergesOnSmallCommunity(t *testing.T) {
	customers := smallCommunity(t)
	cfg := DefaultConfig(testTariff(t), false)
	cfg.MaxSweeps = 10
	res, err := Solve(context.Background(), customers, flatPrice(0.1), nil, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("game did not converge in %d sweeps", res.Sweeps)
	}
}

func TestSolveMixedAttackedMeterFollowsItsOwnPrice(t *testing.T) {
	// Customer 1 (EV, window 17–23) receives a price zeroed at 20–21 while
	// the others see a flat price: the hacked customer must pile its EV
	// charge into the free window.
	customers := smallCommunity(t)
	published := flatPrice(0.1)
	hacked := flatPrice(0.1)
	hacked[20], hacked[21] = 0, 0
	prices := []timeseries.Series{published, hacked, published}
	cfg := DefaultConfig(testTariff(t), false)
	res, err := SolveMixed(context.Background(), customers, prices, nil, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	evEnergy := res.CustomerLoad[1][20] + res.CustomerLoad[1][21] - 2*0.4
	if evEnergy < 5.9 { // EV task is 6 kWh; both free slots at 3 kW
		t.Fatalf("hacked EV customer placed only %v kWh in the free window", evEnergy)
	}
}

func TestSolveMixedValidation(t *testing.T) {
	customers := smallCommunity(t)
	cfg := DefaultConfig(testTariff(t), false)
	if _, err := SolveMixed(context.Background(), customers, []timeseries.Series{flatPrice(0.1)}, nil, cfg, nil); err == nil {
		t.Error("wrong price count accepted")
	}
	ragged := []timeseries.Series{flatPrice(0.1), flatPrice(0.1)[:12], flatPrice(0.1)}
	ragged[1] = append(ragged[1], make(timeseries.Series, 12)...)
	ragged[1] = ragged[1][:20]
	if _, err := SolveMixed(context.Background(), customers, ragged, nil, cfg, nil); err == nil {
		t.Error("ragged prices accepted")
	}
}

func TestSolveRespectsBatteryRateLimits(t *testing.T) {
	base := make([]float64, 24)
	for h := range base {
		base[h] = 0.4
	}
	c := &household.Customer{
		ID:       0,
		BaseLoad: base,
		Appliances: []*appliance.Appliance{
			{Name: "washer", Levels: []float64{0.5, 1.0}, Energy: 2, Start: 8, Deadline: 16},
		},
		Panel: solar.Panel{CapacityKW: 4, Orientation: 1},
		Battery: battery.Battery{
			Capacity: 10, MaxCharge: 1.5, MaxDischarge: 2.0, Efficiency: 1,
		},
	}
	if err := c.Validate(24); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(testTariff(t), true)
	res, err := Solve(context.Background(), []*household.Customer{c}, flatPrice(0.1), [][]float64{middayPV(4)}, cfg, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	traj := res.BatteryTraj[0]
	if traj == nil {
		t.Fatal("missing trajectory")
	}
	if err := c.Battery.CheckTrajectory(traj); err != nil {
		t.Fatalf("trajectory violates physical limits: %v", err)
	}
	// Eqn 1 must still hold against the projected trajectory.
	y, err := battery.ImpliedTrading(traj, res.CustomerLoad[0], middayPV(4))
	if err != nil {
		t.Fatal(err)
	}
	for h := range y {
		if math.Abs(y[h]-res.CustomerTrading[0][h]) > 1e-6 {
			t.Fatalf("slot %d: Eqn 1 broken after projection", h)
		}
	}
}

func TestEquilibriumGapSmallAfterConvergence(t *testing.T) {
	customers := smallCommunity(t)
	cfg := DefaultConfig(testTariff(t), false)
	cfg.MaxSweeps = 10
	price := flatPrice(0.1)
	res, err := Solve(context.Background(), customers, price, nil, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("game did not converge")
	}
	prices := []timeseries.Series{price, price, price}
	gap, worst, err := EquilibriumGap(context.Background(), customers, prices, nil, cfg, res, nil)
	if err != nil {
		t.Fatal(err)
	}
	// After convergence no customer should be able to improve materially.
	totalCost := 0.0
	for _, c := range res.Cost {
		totalCost += c
	}
	if gap > 0.01*totalCost {
		t.Fatalf("equilibrium gap %v (customer %d) is %v%% of total cost",
			gap, worst, 100*gap/totalCost)
	}
}

func TestEquilibriumGapDetectsUnconverged(t *testing.T) {
	// A single sweep from the greedy start leaves visible improvement room
	// in at least some runs; the gap function must at minimum run cleanly
	// and return a non-negative gap.
	customers := smallCommunity(t)
	cfg := DefaultConfig(testTariff(t), false)
	cfg.MaxSweeps = 1
	price := flatPrice(0.1)
	res, err := Solve(context.Background(), customers, price, nil, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	prices := []timeseries.Series{price, price, price}
	gap, _, err := EquilibriumGap(context.Background(), customers, prices, nil, cfg, res, nil)
	if err != nil {
		t.Fatal(err)
	}
	if gap < 0 {
		t.Fatalf("negative gap %v", gap)
	}
}

func TestEquilibriumGapValidation(t *testing.T) {
	customers := smallCommunity(t)
	cfg := DefaultConfig(testTariff(t), false)
	price := flatPrice(0.1)
	res, err := Solve(context.Background(), customers, price, nil, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	prices := []timeseries.Series{price, price, price}
	if _, _, err := EquilibriumGap(context.Background(), customers, prices[:1], nil, cfg, res, nil); err == nil {
		t.Error("mismatched prices accepted")
	}
	if _, _, err := EquilibriumGap(context.Background(), customers, prices, nil, cfg, nil, nil); err == nil {
		t.Error("nil result accepted")
	}
	nmCfg := DefaultConfig(testTariff(t), true)
	if _, _, err := EquilibriumGap(context.Background(), customers, prices, [][]float64{middayPV(1), middayPV(1), middayPV(1)}, nmCfg, res, nil); err == nil {
		t.Error("nil source accepted in NM mode")
	}
}

func TestSolveCustomerLoadNonNegative(t *testing.T) {
	customers := smallCommunity(t)
	pv := [][]float64{middayPV(4), make([]float64, 24), middayPV(3)}
	cfg := DefaultConfig(testTariff(t), true)
	res, err := Solve(context.Background(), customers, flatPrice(0.1), pv, cfg, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := range customers {
		for h, v := range res.CustomerLoad[i] {
			if v < 0 {
				t.Fatalf("customer %d slot %d: negative load %v", i, h, v)
			}
		}
	}
}
