package game

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"nmdetect/internal/obs"
	"nmdetect/internal/rng"
)

func TestShardPlan(t *testing.T) {
	cases := []struct {
		n, shards int
		want      []Range
	}{
		{5, 1, []Range{{0, 5}}},
		{5, 0, []Range{{0, 5}}}, // clamped up to 1
		{5, 2, []Range{{0, 3}, {3, 5}}},
		{6, 3, []Range{{0, 2}, {2, 4}, {4, 6}}},
		{7, 3, []Range{{0, 3}, {3, 5}, {5, 7}}},
		{3, 8, []Range{{0, 1}, {1, 2}, {2, 3}}}, // clamped down to n
	}
	for _, c := range cases {
		got := ShardPlan(c.n, c.shards)
		if len(got) != len(c.want) {
			t.Fatalf("ShardPlan(%d,%d) = %v, want %v", c.n, c.shards, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("ShardPlan(%d,%d)[%d] = %v, want %v", c.n, c.shards, i, got[i], c.want[i])
			}
		}
	}
	// Every plan must tile [0, n) exactly, whatever the parameters.
	for n := 1; n <= 23; n++ {
		for shards := 0; shards <= n+2; shards++ {
			plan := ShardPlan(n, shards)
			at := 0
			for _, r := range plan {
				if r.Start != at || r.End <= r.Start {
					t.Fatalf("ShardPlan(%d,%d) does not tile: %v", n, shards, plan)
				}
				at = r.End
			}
			if at != n {
				t.Fatalf("ShardPlan(%d,%d) covers [0,%d), want [0,%d)", n, shards, at, n)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ShardPlan(0, 2) should panic")
		}
	}()
	ShardPlan(0, 2)
}

// TestSolveShardsLE1Identity is the tentpole's bitwise contract: Shards 0 and
// Shards 1 must never enter the hierarchical code path, producing gob-byte
// identical results to the historical flat solver.
func TestSolveShardsLE1Identity(t *testing.T) {
	customers, pv, cfg := jacobiCommunity(t)
	price := variedPrice()

	legacy, err := Solve(context.Background(), customers, price, pv, cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	want := gobBytes(t, legacy)
	for _, shards := range []int{0, 1} {
		scfg := cfg
		scfg.Shards = shards
		got, err := Solve(context.Background(), customers, price, pv, scfg, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, gobBytes(t, got)) {
			t.Fatalf("Shards=%d: not gob-byte identical to the flat solver", shards)
		}
	}
}

// TestSolveHierarchicalDeterministicAcrossWorkers pins the Workers contract
// for the outer tier: for a fixed shard count the solution is bitwise
// identical for every worker budget, sequential reference path included.
func TestSolveHierarchicalDeterministicAcrossWorkers(t *testing.T) {
	customers, pv, cfg := jacobiCommunity(t)
	price := variedPrice()
	cfg.Shards = 4

	var want []byte
	for _, workers := range []int{1, 2, 4, 8} {
		scfg := cfg
		scfg.Workers = workers
		got, err := Solve(context.Background(), customers, price, pv, scfg, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		b := gobBytes(t, got)
		if want == nil {
			want = b
			continue
		}
		if !bytes.Equal(want, b) {
			t.Fatalf("workers=%d: hierarchical solve differs from workers=1", workers)
		}
	}
}

// TestSolveHierarchicalResultShape checks the assembled community result: all
// per-customer rows populated, totals equal to the index-order sums of the
// rows, outer sweeps recorded, and a deterministic repeat.
func TestSolveHierarchicalResultShape(t *testing.T) {
	customers, pv, cfg := jacobiCommunity(t)
	price := variedPrice()
	cfg.Shards = 3
	cfg.OuterSweeps = 2

	res, err := Solve(context.Background(), customers, price, pv, cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outer < 1 || res.Outer > 2 {
		t.Fatalf("Outer = %d, want in [1,2]", res.Outer)
	}
	if res.Sweeps < 1 {
		t.Fatalf("Sweeps = %d, want >= 1", res.Sweeps)
	}
	n := len(customers)
	if len(res.CustomerLoad) != n || len(res.CustomerTrading) != n || len(res.Cost) != n {
		t.Fatalf("result rows %d/%d/%d, want %d", len(res.CustomerLoad), len(res.CustomerTrading), len(res.Cost), n)
	}
	for i := 0; i < n; i++ {
		if len(res.CustomerLoad[i]) != 24 || len(res.CustomerTrading[i]) != 24 {
			t.Fatalf("customer %d rows missing", i)
		}
	}
	for h := 0; h < 24; h++ {
		sumL, sumY := 0.0, 0.0
		for i := 0; i < n; i++ {
			sumL += res.CustomerLoad[i][h]
			sumY += res.CustomerTrading[i][h]
		}
		if res.Load[h] != sumL || res.GridDemand[h] != sumY {
			t.Fatalf("slot %d: totals not the index-order sum of rows", h)
		}
	}

	again, err := Solve(context.Background(), customers, price, pv, cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gobBytes(t, res), gobBytes(t, again)) {
		t.Fatal("hierarchical solve is not deterministic across repeats")
	}
}

// TestSolveHierarchicalWorkspaceReuse extends the PR 5 workspace contract to
// sharded solves: a reused workspace (with its per-shard children) yields
// gob-byte identical results to a fresh one, across repeated solves.
func TestSolveHierarchicalWorkspaceReuse(t *testing.T) {
	customers, pv, cfg := jacobiCommunity(t)
	price := variedPrice()
	cfg.Shards = 4
	cfg.ActiveTol = 0.05 // exercise the per-shard active-set state too

	fresh, err := Solve(context.Background(), customers, price, pv, cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	want := gobBytes(t, fresh)
	ws := NewWorkspace()
	for trial := 0; trial < 3; trial++ {
		got, err := SolveWS(context.Background(), ws, customers, price, pv, cfg, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, gobBytes(t, got)) {
			t.Fatalf("trial %d: reused workspace differs from fresh solve", trial)
		}
	}
}

// TestSolveHierarchicalNoNetMetering covers the consumption-only model (the
// NM-blind detector's world): no PV, no batteries, nil source.
func TestSolveHierarchicalNoNetMetering(t *testing.T) {
	customers, _, cfg := jacobiCommunity(t)
	price := variedPrice()
	cfg.NetMetering = false
	cfg.Shards = 3

	res, err := Solve(context.Background(), customers, price, nil, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outer < 1 {
		t.Fatalf("Outer = %d, want >= 1", res.Outer)
	}
	for h := 0; h < 24; h++ {
		if res.Load[h] != res.GridDemand[h] {
			t.Fatalf("slot %d: without net metering trading must equal consumption", h)
		}
	}
}

// TestExternalYValidation covers the coupling hook's input checking.
func TestExternalYValidation(t *testing.T) {
	customers, pv, cfg := jacobiCommunity(t)
	price := variedPrice()

	bad := cfg
	bad.ExternalY = make([]float64, 7)
	if _, err := Solve(context.Background(), customers, price, pv, bad, rng.New(7)); err == nil ||
		!strings.Contains(err.Error(), "external") {
		t.Fatalf("short ExternalY: err = %v, want external-aggregate length error", err)
	}

	nan := cfg
	nan.ExternalY = make([]float64, 24)
	nan.ExternalY[3] = nan64()
	if err := nan.Validate(); err == nil || !strings.Contains(err.Error(), "external") {
		t.Fatalf("NaN ExternalY: err = %v, want non-finite error", err)
	}
}

func nan64() float64 {
	z := 0.0
	return z / z
}

// TestExternalYCouples asserts the hook changes the priced neighborhood: a
// large fixed external aggregate must shift at least one customer's cost
// (quadratic pricing makes a crowded grid strictly more expensive).
func TestExternalYCouples(t *testing.T) {
	customers, pv, cfg := jacobiCommunity(t)
	price := variedPrice()

	base, err := Solve(context.Background(), customers, price, pv, cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	ext := cfg
	ext.ExternalY = make([]float64, 24)
	for t2 := range ext.ExternalY {
		ext.ExternalY[t2] = 500
	}
	crowded, err := Solve(context.Background(), customers, price, pv, ext, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	moved := false
	for i := range base.Cost {
		if base.Cost[i] != crowded.Cost[i] {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("a 500 kW external aggregate left every customer's cost untouched")
	}
}

// TestSolveHierarchicalObsCounters checks the outer-tier instrumentation:
// outer sweep counters and per-shard solve/sweep counters appear in the event
// stream, and the disabled path still works (covered implicitly by every
// other test running without a sink).
func TestSolveHierarchicalObsCounters(t *testing.T) {
	customers, pv, cfg := jacobiCommunity(t)
	price := variedPrice()
	cfg.Shards = 2
	cfg.ActiveTol = 0.05

	var buf bytes.Buffer
	sink := obs.NewSink(&buf)
	ctx := obs.With(context.Background(), sink)
	if _, err := Solve(ctx, customers, price, pv, cfg, rng.New(7)); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{
		`"game.outer.sweeps"`,
		`"game.outer.residual"`,
		`"game.shard.000.solves"`,
		`"game.shard.001.sweeps"`,
		`"game.shard.000.skipped"`,
		`"game.shard.001.resolved"`,
	} {
		if !strings.Contains(out, name) {
			t.Fatalf("event stream missing %s:\n%s", name, out)
		}
	}
}
