// Package game implements the Net Metering Aware Energy Consumption
// Scheduling Game of Section 3.1 and its iterative solution (Algorithm 1).
//
// Each customer n minimizes the monetary cost Σₕ Cₙʰ of Problem P1 by
// choosing appliance power levels xₘʰ (via the dynamic-programming scheduler,
// package dpsched) and a battery-storage trajectory bₙ (via cross-entropy
// optimization, package ceopt), while the community total trading Σᵢ yᵢʰ —
// the shared information of the game — is held at its latest value. Customers
// update in Gauss-Seidel sweeps until the total trading vector converges;
// each best response can only lower that customer's cost, which empirically
// drives the quadratic-pricing game to a stable point in a handful of sweeps
// (Mohsenian-Rad et al. [9] prove convergence for the purchase-only convex
// case).
//
// The sweep schedule generalizes to block-Jacobi (Config.JacobiBlock): the
// customer order is partitioned into fixed consecutive blocks, best responses
// within a block are computed against the trading total frozen at block start
// — and may therefore run concurrently (Config.Workers) — and the updates are
// applied in index order. Block size 1 is exactly the sequential Gauss-Seidel
// schedule. Because each customer's CE stream is derived from (sweep, index)
// and updates are applied in index order, the solution is a function of the
// block size only: for a fixed seed and block size the output is bitwise
// identical for every worker count.
//
// Disabling net metering (Config.NetMetering = false) removes PV, battery and
// selling from the model: each customer's trading equals their consumption,
// which is the community model of [9] and [8] — the baseline the paper's
// NM-blind detector reasons with.
package game

import (
	"context"
	"errors"
	"fmt"
	"math"

	"nmdetect/internal/appliance"
	"nmdetect/internal/battery"
	"nmdetect/internal/ceopt"
	"nmdetect/internal/dpsched"
	"nmdetect/internal/household"
	"nmdetect/internal/obs"
	"nmdetect/internal/parallel"
	"nmdetect/internal/rng"
	"nmdetect/internal/tariff"
	"nmdetect/internal/timeseries"
	"nmdetect/internal/watchdog"
)

// ErrDiverged re-exports the shared watchdog sentinel: a solve that returns
// an error wrapping it left the healthy numerical region (typically because
// of non-finite prices or PV inputs) and exhausted its retry budget.
var ErrDiverged = watchdog.ErrDiverged

// Config tunes the game solver.
type Config struct {
	// Tariff is the quadratic cost model (with its sell-back divisor W).
	Tariff tariff.Quadratic
	// NetMetering enables PV generation, battery scheduling and selling.
	NetMetering bool
	// BatteryInitFrac is the initial state of charge as a fraction of
	// capacity at slot 0.
	BatteryInitFrac float64
	// MaxSweeps bounds the Gauss-Seidel best-response sweeps.
	MaxSweeps int
	// Tol is the convergence tolerance on the per-slot total trading change
	// (kW) between consecutive sweeps.
	Tol float64
	// CE configures the battery trajectory optimizer.
	CE ceopt.Options
	// Workers bounds the number of concurrent best-response computations
	// inside one Jacobi block. 0 selects runtime.NumCPU(); 1 computes
	// sequentially. The worker count is purely an execution knob: it never
	// affects the solution (see JacobiBlock).
	Workers int
	// JacobiBlock is the block size of the best-response sweep partition.
	// 0 or 1 selects the sequential Gauss-Seidel schedule (the reference
	// semantics every existing result was produced with). Values > 1 freeze
	// the community trading total at block start so the block's best
	// responses are independent and can run concurrently; larger blocks
	// expose more parallelism but use staler totals, which can cost extra
	// sweeps — and a whole-community block may oscillate between
	// cost-equivalent schedules without ever satisfying the trading-delta
	// convergence test, so certify Jacobi solutions with EquilibriumGap
	// rather than the Converged flag. The block size — never Workers —
	// determines the solution.
	JacobiBlock int
	// ActiveTol enables residual-gated active-set sweeps: a customer whose
	// last best response moved their trading by at most ActiveTol (kW,
	// max-norm) AND whose observed input — the other customers' total
	// trading — moved by at most ActiveTol since they last solved is skipped
	// instead of re-solved. Nash fixed points leave most players stationary
	// after the early sweeps, so skipping them trades a bounded amount of
	// equilibrium quality (certify with EquilibriumGap) for sweeps that only
	// pay for customers whose neighborhood actually changed. 0 — the default
	// — disables gating entirely: every customer re-solves every sweep and
	// the solve is bitwise identical to the historical solver (the same
	// contract JacobiBlock <= 1 keeps for the sweep schedule). Like
	// JacobiBlock and unlike Workers, a non-zero ActiveTol selects a
	// (deterministic) different equilibrium path.
	ActiveTol float64
	// Shards partitions the community into that many contiguous near-equal
	// shards and solves hierarchically: each shard runs its own inner
	// best-response iteration (this solver, with the shard's sub-community)
	// while the shards exchange only their per-slot aggregate trading
	// vectors in an outer Jacobi loop — O(H) of coupling state per shard per
	// outer sweep instead of one flat O(N·H) neighborhood. Values <= 1 (the
	// default) select the flat solver, bitwise identical to the historical
	// engine; like JacobiBlock and ActiveTol — and unlike Workers — a larger
	// value selects a (deterministic) different equilibrium path. Shards
	// solve concurrently under Workers; per-shard CE streams are derived
	// from (outer sweep, shard), so the fan-out schedule never affects bits.
	Shards int
	// OuterSweeps bounds the outer inter-shard Jacobi sweeps of a
	// hierarchical solve (Shards > 1). 0 selects the default of 2: one
	// uncoupled-warm-start pass refined by one coupled pass.
	OuterSweeps int
	// OuterTol is the convergence tolerance (kW, max-norm) on the per-shard
	// aggregate trading change between consecutive outer sweeps. 0 selects
	// Tol.
	OuterTol float64
	// ExternalY is a fixed per-slot trading aggregate from outside this
	// community that every customer's best response prices against, exactly
	// as if it were another (frozen) player's trading. nil — the default —
	// adds nothing and leaves the solve bitwise identical to the historical
	// solver. The hierarchical solver uses this hook to couple shards; it is
	// exported so harnesses can embed a community in a larger neighborhood.
	// Must have length H when non-nil. Result.Load/GridDemand still sum the
	// community's own customers only.
	ExternalY []float64
}

// DefaultConfig returns the solver configuration used by the experiments.
func DefaultConfig(t tariff.Quadratic, netMetering bool) Config {
	ce := ceopt.DefaultOptions()
	ce.Samples = 40
	ce.MaxIter = 25
	return Config{
		Tariff:          t,
		NetMetering:     netMetering,
		BatteryInitFrac: 0.3,
		MaxSweeps:       4,
		Tol:             1.0,
		CE:              ce,
	}
}

// Validate checks the configuration. Range checks are written to reject NaN
// explicitly — NaN passes every ordered comparison, so `x < 0 || x > 1` alone
// would admit it.
func (c Config) Validate() error {
	if math.IsNaN(c.BatteryInitFrac) || c.BatteryInitFrac < 0 || c.BatteryInitFrac > 1 {
		return fmt.Errorf("game: battery init fraction %v out of [0,1]", c.BatteryInitFrac)
	}
	if c.MaxSweeps < 1 {
		return fmt.Errorf("game: max sweeps %d must be positive", c.MaxSweeps)
	}
	if math.IsNaN(c.Tol) || math.IsInf(c.Tol, 0) || c.Tol <= 0 {
		return fmt.Errorf("game: tolerance %v must be positive and finite", c.Tol)
	}
	if math.IsNaN(c.Tariff.W) || math.IsInf(c.Tariff.W, 0) || c.Tariff.W < 1 {
		return fmt.Errorf("game: tariff sell-back divisor %v must be >= 1 and finite", c.Tariff.W)
	}
	if c.Workers < 0 {
		return fmt.Errorf("game: negative worker count %d", c.Workers)
	}
	if c.JacobiBlock < 0 {
		return fmt.Errorf("game: negative Jacobi block size %d", c.JacobiBlock)
	}
	if math.IsNaN(c.ActiveTol) || math.IsInf(c.ActiveTol, 0) || c.ActiveTol < 0 {
		return fmt.Errorf("game: active-set tolerance %v must be finite and non-negative", c.ActiveTol)
	}
	if c.Shards < 0 {
		return fmt.Errorf("game: negative shard count %d", c.Shards)
	}
	if c.OuterSweeps < 0 {
		return fmt.Errorf("game: negative outer sweep bound %d", c.OuterSweeps)
	}
	if math.IsNaN(c.OuterTol) || math.IsInf(c.OuterTol, 0) || c.OuterTol < 0 {
		return fmt.Errorf("game: outer tolerance %v must be finite and non-negative", c.OuterTol)
	}
	if !watchdog.AllFinite(c.ExternalY) {
		return errors.New("game: external trading aggregate has non-finite entries")
	}
	return c.CE.Validate()
}

// Result holds the solved community schedule.
type Result struct {
	// Load is the community consumption Lₕ = Σₙ lₙʰ per slot.
	Load timeseries.Series
	// GridDemand is the community net purchase Σₙ yₙʰ per slot (equals Load
	// minus renewable self-use and battery shifting; equals Load exactly
	// when net metering is disabled).
	GridDemand timeseries.Series
	// CustomerLoad[n][h] is lₙʰ.
	CustomerLoad [][]float64
	// CustomerTrading[n][h] is yₙʰ.
	CustomerTrading [][]float64
	// BatteryTraj[n] is bₙ (length H+1); nil entries for customers without
	// batteries or with net metering disabled.
	BatteryTraj [][]float64
	// Cost[n] is customer n's final monetary cost.
	Cost []float64
	// Sweeps is the number of best-response sweeps performed. For a
	// hierarchical solve it is the largest inner sweep count any shard used
	// during the final outer iteration.
	Sweeps int
	// Outer is the number of inter-shard Jacobi sweeps a hierarchical solve
	// performed; 0 for flat solves (Shards <= 1).
	Outer int
	// Converged reports whether the trading vector stabilized within Tol
	// (flat solves) or the per-shard aggregates stabilized within OuterTol
	// (hierarchical solves).
	Converged bool
	// Skipped and Resolved count active-set gate outcomes over the whole
	// solve, retried sweeps included (both zero when ActiveTol == 0). A
	// hierarchical solve sums them across shards and outer sweeps.
	Skipped, Resolved int64
}

// custWorkspace holds the per-customer scratch memory one best response
// needs: the DP tables (dpsched), the CE population (ceopt), the trajectory /
// base-load / cost-snapshot buffers of bestResponse, and the active-set state
// (last solved-against neighborhood, last residual). All buffers grow
// monotonically; none escape into Results.
type custWorkspace struct {
	dp dpsched.Workspace
	ce ceopt.Workspace

	curTraj  []float64
	baseLoad []float64
	snapshot []float64
	lo       []float64
	hi       []float64
	init     []float64

	// Active-set state (meaningful only when cfg.ActiveTol > 0).
	yOther     []float64 // block-Jacobi scratch: the frozen neighborhood total
	lastYOther []float64 // neighborhood total this customer last solved against
	residual   float64   // max-norm trading change of the last best response
	solved     bool      // whether lastYOther/residual are populated
}

// Workspace holds per-customer solver scratch that SolveWS/SolveMixedWS reuse
// across calls — across sweeps within a solve and across solves (e.g. the
// per-day simulation loop). Reuse changes nothing about results: a Result
// fully owns its memory (loads, trading, trajectories are freshly allocated),
// so Results from earlier solves remain valid after the workspace is reused,
// and a solve through a reused workspace is bitwise identical to one through
// a fresh workspace. A Workspace is NOT safe for concurrent solves; give each
// concurrent solve its own. The per-customer entries are handed to the
// (possibly concurrent) best responses one-to-one, which is safe because each
// customer index is processed by exactly one goroutine per block.
type Workspace struct {
	cust []*custWorkspace
	// shards holds the lazily created child workspaces of a hierarchical
	// solve, one per shard. Each shard's inner solve is driven by exactly
	// one goroutine per outer sweep, so handing child s to shard s keeps the
	// not-concurrency-safe contract intact.
	shards []*Workspace
}

// NewWorkspace returns an empty solver workspace; per-customer scratch is
// allocated on first use and reused afterwards.
func NewWorkspace() *Workspace { return &Workspace{} }

// ensure grows the per-customer slice to n entries. Called before any
// concurrent phase so workers only index, never append.
func (w *Workspace) ensure(n int) {
	for len(w.cust) < n {
		w.cust = append(w.cust, &custWorkspace{})
	}
}

// shardChildren grows the per-shard child workspaces to s entries and
// returns them. Children are created once and reused across outer sweeps and
// across solves, like the per-customer scratch.
func (w *Workspace) shardChildren(s int) []*Workspace {
	for len(w.shards) < s {
		w.shards = append(w.shards, NewWorkspace())
	}
	return w.shards[:s]
}

// invalidate forgets all active-set state, forcing every customer to re-solve
// on their next turn. Used when the watchdog rewinds to the last good iterate
// (the recorded residuals describe the abandoned path, not the restored one)
// and at the start of every solve (state must never leak across solves: each
// solve starts from the greedy iterate, not from where the previous solve
// ended).
func (w *Workspace) invalidate() {
	for _, cw := range w.cust {
		cw.solved = false
	}
}

// Solve runs Algorithm 1. price is the guideline price over the horizon
// (len == H ≥ 24); pv[n] is customer n's renewable forecast θₙ (ignored when
// net metering is disabled; may be nil then). The source drives CE sampling
// and must not be nil when net metering is enabled.
//
// The context is polled at best-response granularity (every Gauss-Seidel
// customer / Jacobi block, and inside each CE iteration): cancelling it
// aborts the solve well within one sweep and returns ctx.Err(). A nil ctx
// never cancels, and cancellation never alters the result of a solve that
// completes.
func Solve(ctx context.Context, customers []*household.Customer, price timeseries.Series, pv [][]float64, cfg Config, src *rng.Source) (*Result, error) {
	return SolveWS(ctx, nil, customers, price, pv, cfg, src)
}

// SolveWS is Solve with a reusable solver workspace. A nil workspace is
// equivalent to a fresh one (and to Solve). See Workspace for the reuse
// contract.
func SolveWS(ctx context.Context, ws *Workspace, customers []*household.Customer, price timeseries.Series, pv [][]float64, cfg Config, src *rng.Source) (*Result, error) {
	if len(customers) == 0 {
		return nil, errors.New("game: empty community")
	}
	prices := make([]timeseries.Series, len(customers))
	for i := range prices {
		prices[i] = price
	}
	return SolveMixedWS(ctx, ws, customers, prices, pv, cfg, src)
}

// SolveMixed runs Algorithm 1 with per-customer guideline prices — the
// situation under a pricing cyberattack, where hacked meters receive a
// manipulated price while intact meters receive the published one. Each
// customer best-responds to their own price; all interact through the shared
// community trading total. Cancellation semantics match Solve.
func SolveMixed(ctx context.Context, customers []*household.Customer, prices []timeseries.Series, pv [][]float64, cfg Config, src *rng.Source) (*Result, error) {
	return SolveMixedWS(ctx, nil, customers, prices, pv, cfg, src)
}

// SolveMixedWS is SolveMixed with a reusable solver workspace. A nil
// workspace is equivalent to a fresh one.
func SolveMixedWS(ctx context.Context, ws *Workspace, customers []*household.Customer, prices []timeseries.Series, pv [][]float64, cfg Config, src *rng.Source) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sink := obs.From(ctx)
	defer sink.Span("game.solve")()
	if len(customers) == 0 {
		return nil, errors.New("game: empty community")
	}
	if len(prices) != len(customers) {
		return nil, fmt.Errorf("game: %d price vectors for %d customers", len(prices), len(customers))
	}
	h := len(prices[0])
	if h < 24 {
		return nil, fmt.Errorf("game: horizon %d shorter than a day", h)
	}
	for n, p := range prices {
		if len(p) != h {
			return nil, fmt.Errorf("game: price vector %d has length %d, want %d", n, len(p), h)
		}
	}
	if cfg.NetMetering {
		if src == nil {
			return nil, errors.New("game: nil random source with net metering enabled")
		}
		if len(pv) != len(customers) {
			return nil, fmt.Errorf("game: pv traces %d != customers %d", len(pv), len(customers))
		}
		for n, tr := range pv {
			if len(tr) != h {
				return nil, fmt.Errorf("game: pv trace %d has length %d, want %d", n, len(tr), h)
			}
		}
	}
	if cfg.ExternalY != nil && len(cfg.ExternalY) != h {
		return nil, fmt.Errorf("game: external trading aggregate has length %d, want %d", len(cfg.ExternalY), h)
	}
	// Hierarchical route: with more than one effective shard the solve is the
	// outer Jacobi loop of hier.go; a single-shard plan (Shards <= 1, or a
	// one-customer community) falls through to the flat solver untouched, so
	// the shards<=1 path stays bitwise identical to the historical engine.
	if cfg.Shards > 1 && len(customers) > 1 {
		return solveHierarchical(ctx, ws, customers, prices, pv, cfg, src)
	}

	n := len(customers)
	if ws == nil {
		ws = NewWorkspace()
	}
	ws.ensure(n)
	ws.invalidate()
	active := cfg.ActiveTol > 0
	res := &Result{
		Load:            make(timeseries.Series, h),
		GridDemand:      make(timeseries.Series, h),
		CustomerLoad:    make([][]float64, n),
		CustomerTrading: make([][]float64, n),
		BatteryTraj:     make([][]float64, n),
		Cost:            make([]float64, n),
	}

	// Initialization: base load plus earliest-feasible appliance placement;
	// trading = load − θ (flat battery).
	totalY := make([]float64, h)
	for i, c := range customers {
		load := make([]float64, h)
		for t := 0; t < h; t++ {
			load[t] = c.BaseLoadAt(t)
		}
		for _, a := range c.Appliances {
			if err := greedyFill(a, load); err != nil {
				return nil, fmt.Errorf("game: customer %d: %w", i, err)
			}
		}
		res.CustomerLoad[i] = load
		y := make([]float64, h)
		for t := 0; t < h; t++ {
			y[t] = load[t]
			if cfg.NetMetering {
				y[t] -= pv[i][t]
			}
		}
		res.CustomerTrading[i] = y
		for t := 0; t < h; t++ {
			totalY[t] += y[t]
		}
	}
	// A fixed external aggregate joins the shared total exactly like one more
	// (frozen) player; gating on nil keeps the historical path untouched.
	if cfg.ExternalY != nil {
		for t := 0; t < h; t++ {
			totalY[t] += cfg.ExternalY[t]
		}
	}

	// Best-response sweeps: Gauss-Seidel blocks of 1 (the reference
	// schedule), block-Jacobi otherwise. zeroPV is the shared all-zero PV
	// row used by every customer when net metering is off (read-only, so
	// safe to share across concurrent best responses).
	block := cfg.JacobiBlock
	if block < 1 {
		block = 1
	}
	zeroPV := make([]float64, h)
	type response struct {
		load, y, traj []float64
		cost          float64
		skip          bool
	}
	var outs []response
	if block > 1 {
		outs = make([]response, block)
	}

	// Watchdog state: lastGood is the iterate at the end of the most recent
	// healthy sweep (initially the greedy starting point). On a health
	// failure — a non-finite trading total, a diverging sweep delta, or a
	// best response reporting ErrDiverged — the iterate is restored and the
	// sweeps restart with retry-salted CE streams (a different stochastic
	// path; retry 0 uses the historical labels so healthy runs are bitwise
	// unchanged). The budget exhausted, the solve reports ErrDiverged.
	lastGood := newGameSnapshot(res, totalY)
	gapMon := watchdog.NewMonitor(100, 1)
	retry := 0
	ceLabel := func(sweep, i int) string {
		if retry == 0 {
			return fmt.Sprintf("ce-%d-%d", sweep, i)
		}
		return fmt.Sprintf("ce-r%d-%d-%d", retry, sweep, i)
	}
	failSweep := func(cause error) error {
		retry++
		if retry > watchdog.Retries {
			return fmt.Errorf("game: sweeps diverged after %d retries: %w", watchdog.Retries, cause)
		}
		sink.Count("game.watchdog.retries", 1)
		lastGood.restore(res, totalY)
		gapMon.Reset()
		// The recorded residuals describe the abandoned path; after the
		// rewind every customer must be treated as unsolved.
		ws.invalidate()
		return nil
	}

sweeps:
	for sweep := 0; sweep < cfg.MaxSweeps; sweep++ {
		res.Sweeps = sweep + 1
		maxDelta := 0.0
		var skippedSweep, resolvedSweep int64
		for start := 0; start < n; start += block {
			// Cancellation check per block (per customer in the Gauss-Seidel
			// schedule) keeps the abort latency to one best response even for
			// a 500-customer sweep.
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			end := start + block
			if end > n {
				end = n
			}
			if end-start == 1 {
				// Single-customer block: the original Gauss-Seidel body,
				// kept verbatim (including its floating-point update order)
				// so JacobiBlock <= 1 reproduces historical results bitwise.
				// The active-set gate runs strictly before any float work on
				// totalY, so with ActiveTol == 0 (gate off) the path is
				// untouched, and a skipped customer leaves totalY bitwise
				// alone (no subtract-then-re-add round trip).
				i := start
				cw := ws.cust[i]
				oldY := res.CustomerTrading[i]
				if active && cw.solved && cw.residual <= cfg.ActiveTol {
					moved := 0.0
					for t := 0; t < h; t++ {
						if d := math.Abs((totalY[t] - oldY[t]) - cw.lastYOther[t]); d > moved {
							moved = d
						}
					}
					if moved <= cfg.ActiveTol {
						// A skipped customer did not move, so they contribute
						// nothing to this sweep's trading delta.
						skippedSweep++
						continue
					}
				}
				var csrc *rng.Source
				if cfg.NetMetering {
					csrc = src.Derive(ceLabel(sweep, i))
				}
				// Remove this customer's trading from the shared total.
				for t := 0; t < h; t++ {
					totalY[t] -= oldY[t]
				}
				newLoad, newY, traj, cost, err := bestResponse(ctx, customers[i], prices[i], pvRow(pv, i, cfg.NetMetering, zeroPV), totalY, cfg, csrc, cw)
				if err != nil {
					if errors.Is(err, watchdog.ErrDiverged) {
						if ferr := failSweep(fmt.Errorf("customer %d: %w", i, err)); ferr != nil {
							return nil, ferr
						}
						sweep = -1
						continue sweeps
					}
					return nil, fmt.Errorf("game: customer %d: %w", i, err)
				}
				if active {
					// totalY currently holds exactly the neighborhood this
					// customer just solved against.
					cw.lastYOther = growFloats(cw.lastYOther, h)
					copy(cw.lastYOther, totalY)
				}
				cd := 0.0
				for t := 0; t < h; t++ {
					if d := math.Abs(newY[t] - oldY[t]); d > cd {
						cd = d
					}
					totalY[t] += newY[t]
				}
				if cd > maxDelta {
					maxDelta = cd
				}
				if active {
					cw.residual, cw.solved = cd, true
					resolvedSweep++
				}
				res.CustomerLoad[i] = newLoad
				res.CustomerTrading[i] = newY
				res.BatteryTraj[i] = traj
				res.Cost[i] = cost
				continue
			}

			// Block-Jacobi: each member best-responds to the total frozen at
			// block start minus its own previous trading. Members only read
			// shared state and write their own slot of outs, so the block is
			// safe to fan out; per-customer CE streams are derived from
			// (sweep, index), making the fan-out schedule irrelevant.
			out := outs[:end-start]
			err := parallel.ForEach(ctx, cfg.Workers, end-start, func(k int) error {
				i := start + k
				cw := ws.cust[i]
				oldY := res.CustomerTrading[i]
				cw.yOther = growFloats(cw.yOther, h)
				yOther := cw.yOther
				for t := 0; t < h; t++ {
					yOther[t] = totalY[t] - oldY[t]
				}
				if active && cw.solved && cw.residual <= cfg.ActiveTol {
					moved := 0.0
					for t := 0; t < h; t++ {
						if d := math.Abs(yOther[t] - cw.lastYOther[t]); d > moved {
							moved = d
						}
					}
					if moved <= cfg.ActiveTol {
						out[k] = response{skip: true}
						return nil
					}
				}
				var csrc *rng.Source
				if cfg.NetMetering {
					csrc = src.Derive(ceLabel(sweep, i))
				}
				load, y, traj, cost, err := bestResponse(ctx, customers[i], prices[i], pvRow(pv, i, cfg.NetMetering, zeroPV), yOther, cfg, csrc, cw)
				if err != nil {
					return fmt.Errorf("game: customer %d: %w", i, err)
				}
				if active {
					cw.lastYOther = growFloats(cw.lastYOther, h)
					copy(cw.lastYOther, yOther)
				}
				out[k] = response{load: load, y: y, traj: traj, cost: cost}
				return nil
			})
			if err != nil {
				if errors.Is(err, watchdog.ErrDiverged) {
					if ferr := failSweep(err); ferr != nil {
						return nil, ferr
					}
					sweep = -1
					continue sweeps
				}
				return nil, err
			}
			// Apply updates in index order (deterministic float accumulation).
			// Skipped customers leave their slot of res and totalY untouched.
			for k := range out {
				if out[k].skip {
					skippedSweep++
					continue
				}
				i := start + k
				oldY := res.CustomerTrading[i]
				newY := out[k].y
				cd := 0.0
				for t := 0; t < h; t++ {
					if d := math.Abs(newY[t] - oldY[t]); d > cd {
						cd = d
					}
					totalY[t] -= oldY[t]
					totalY[t] += newY[t]
				}
				if cd > maxDelta {
					maxDelta = cd
				}
				if active {
					cw := ws.cust[i]
					cw.residual, cw.solved = cd, true
					resolvedSweep++
				}
				res.CustomerLoad[i] = out[k].load
				res.CustomerTrading[i] = newY
				res.BatteryTraj[i] = out[k].traj
				res.Cost[i] = out[k].cost
			}
		}
		// Sweep-boundary health check: trading totals must stay finite and
		// the fixed-point gap must not grow without bound.
		sink.Count("game.sweeps", 1)
		sink.Observe("game.sweep.residual", maxDelta)
		if active {
			sink.Count("game.active.skipped", skippedSweep)
			sink.Count("game.active.resolved", resolvedSweep)
			res.Skipped += skippedSweep
			res.Resolved += resolvedSweep
		}
		healthErr := gapMon.Observe(maxDelta)
		if healthErr == nil && !watchdog.AllFinite(totalY) {
			healthErr = fmt.Errorf("game: non-finite trading total after sweep %d: %w", sweep, watchdog.ErrDiverged)
		}
		if healthErr != nil {
			if ferr := failSweep(healthErr); ferr != nil {
				return nil, ferr
			}
			sweep = -1
			continue
		}
		lastGood.capture(res, totalY)
		if maxDelta < cfg.Tol {
			res.Converged = true
			break
		}
	}

	for t := 0; t < h; t++ {
		sumL, sumY := 0.0, 0.0
		for i := range customers {
			sumL += res.CustomerLoad[i][t]
			sumY += res.CustomerTrading[i][t]
		}
		res.Load[t] = sumL
		res.GridDemand[t] = sumY
	}
	return res, nil
}

// gameSnapshot is a deep copy of the solver's mutable iterate — the
// last-good state the watchdog restores on divergence. Capture reuses its
// buffers, so the healthy path costs one value copy per sweep and no
// steady-state allocation.
type gameSnapshot struct {
	totalY  []float64
	load    [][]float64
	trading [][]float64
	traj    [][]float64
	cost    []float64
	sweeps  int
}

func newGameSnapshot(res *Result, totalY []float64) *gameSnapshot {
	s := &gameSnapshot{
		totalY:  make([]float64, len(totalY)),
		load:    make([][]float64, len(res.CustomerLoad)),
		trading: make([][]float64, len(res.CustomerTrading)),
		traj:    make([][]float64, len(res.BatteryTraj)),
		cost:    make([]float64, len(res.Cost)),
	}
	s.capture(res, totalY)
	return s
}

// copyRowInto copies src into *dst, reallocating only on shape changes; a nil
// src yields a nil *dst (customers without batteries have nil trajectories).
func copyRowInto(dst *[]float64, src []float64) {
	if src == nil {
		*dst = nil
		return
	}
	if len(*dst) != len(src) {
		*dst = make([]float64, len(src))
	}
	copy(*dst, src)
}

func (s *gameSnapshot) capture(res *Result, totalY []float64) {
	copy(s.totalY, totalY)
	for i := range s.load {
		copyRowInto(&s.load[i], res.CustomerLoad[i])
		copyRowInto(&s.trading[i], res.CustomerTrading[i])
		copyRowInto(&s.traj[i], res.BatteryTraj[i])
	}
	copy(s.cost, res.Cost)
	s.sweeps = res.Sweeps
}

func (s *gameSnapshot) restore(res *Result, totalY []float64) {
	copy(totalY, s.totalY)
	for i := range s.load {
		copyRowInto(&res.CustomerLoad[i], s.load[i])
		copyRowInto(&res.CustomerTrading[i], s.trading[i])
		copyRowInto(&res.BatteryTraj[i], s.traj[i])
	}
	copy(res.Cost, s.cost)
	res.Sweeps = s.sweeps
}

// pvRow selects customer i's PV trace, or the caller's shared all-zero row
// when net metering is off (hoisted to one allocation per solve; callers must
// treat the returned slice as read-only).
func pvRow(pv [][]float64, i int, netMetering bool, zero []float64) []float64 {
	if !netMetering || pv == nil {
		return zero
	}
	return pv[i]
}

// projectTrajectory walks a storage trajectory and clamps each step to the
// battery's rate limits and state bounds, making the CE solution physically
// feasible exactly (the CE penalty only discourages violations). No-op for
// unlimited batteries.
func projectTrajectory(traj []float64, b battery.Battery) {
	for t := 1; t < len(traj); t++ {
		delta := traj[t] - traj[t-1]
		if b.MaxCharge > 0 && delta > b.MaxCharge {
			delta = b.MaxCharge
		}
		if b.MaxDischarge > 0 && -delta > b.MaxDischarge {
			delta = -b.MaxDischarge
		}
		v := traj[t-1] + delta
		if v < 0 {
			v = 0
		}
		if v > b.Capacity {
			v = b.Capacity
		}
		traj[t] = v
	}
}

// EquilibriumGap measures how far a solved game is from a Nash point: for
// each customer it computes one more best response against the others'
// current trading and returns the largest cost improvement any customer
// could still realize (and that customer's index). A small gap certifies the
// Gauss-Seidel iteration converged to an ε-equilibrium; the paper's
// Algorithm 1 relies on this behavior without proving it for the
// battery-extended game, so the library makes it checkable. Cancellation
// semantics match Solve.
func EquilibriumGap(ctx context.Context, customers []*household.Customer, prices []timeseries.Series, pv [][]float64, cfg Config, res *Result, src *rng.Source) (gap float64, worst int, err error) {
	if err := cfg.Validate(); err != nil {
		return 0, 0, err
	}
	if res == nil || len(res.CustomerTrading) != len(customers) {
		return 0, 0, errors.New("game: result does not match the community")
	}
	if len(res.Cost) != len(customers) {
		return 0, 0, fmt.Errorf("game: result has %d costs for %d customers", len(res.Cost), len(customers))
	}
	if len(prices) != len(customers) {
		return 0, 0, fmt.Errorf("game: %d price vectors for %d customers", len(prices), len(customers))
	}
	if len(prices) == 0 {
		return 0, 0, errors.New("game: empty community")
	}
	h := len(prices[0])
	for i, p := range prices {
		if len(p) != h {
			return 0, 0, fmt.Errorf("game: price vector %d has length %d, want %d", i, len(p), h)
		}
	}
	// A malformed Result must surface as an error, not an index panic.
	for i := range customers {
		if len(res.CustomerTrading[i]) != h {
			return 0, 0, fmt.Errorf("game: result trading vector %d has length %d, want price horizon %d",
				i, len(res.CustomerTrading[i]), h)
		}
	}
	if cfg.NetMetering {
		if src == nil {
			return 0, 0, errors.New("game: nil source with net metering enabled")
		}
		if len(pv) != len(customers) {
			return 0, 0, fmt.Errorf("game: pv traces %d != customers %d", len(pv), len(customers))
		}
		for i, tr := range pv {
			if len(tr) != h {
				return 0, 0, fmt.Errorf("game: pv trace %d has length %d, want %d", i, len(tr), h)
			}
		}
	}

	if cfg.ExternalY != nil && len(cfg.ExternalY) != h {
		return 0, 0, fmt.Errorf("game: external trading aggregate has length %d, want %d", len(cfg.ExternalY), h)
	}

	totalY := make([]float64, h)
	for i := range customers {
		for t := 0; t < h; t++ {
			totalY[t] += res.CustomerTrading[i][t]
		}
	}
	if cfg.ExternalY != nil {
		for t := 0; t < h; t++ {
			totalY[t] += cfg.ExternalY[t]
		}
	}

	// Each customer's probe best response is independent of the others
	// (streams are derived per index), so the gap scan parallelizes freely;
	// the reduction below runs in index order either way. The probe workspace
	// is local — one entry per customer, pre-grown before the fan-out so the
	// workers only index into it.
	probeWS := NewWorkspace()
	probeWS.ensure(len(customers))
	zeroPV := make([]float64, h)
	improvement := make([]float64, len(customers))
	err = parallel.ForEach(ctx, cfg.Workers, len(customers), func(i int) error {
		cw := probeWS.cust[i]
		cw.yOther = growFloats(cw.yOther, h)
		yOther := cw.yOther
		for t := 0; t < h; t++ {
			yOther[t] = totalY[t] - res.CustomerTrading[i][t]
		}
		var csrc *rng.Source
		if cfg.NetMetering {
			csrc = src.Derive(fmt.Sprintf("gap-%d", i))
		}
		_, _, _, cost, err := bestResponse(ctx, customers[i], prices[i], pvRow(pv, i, cfg.NetMetering, zeroPV), yOther, cfg, csrc, cw)
		if err != nil {
			return fmt.Errorf("game: customer %d: %w", i, err)
		}
		improvement[i] = res.Cost[i] - cost
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	worst = -1
	for i, imp := range improvement {
		if imp > gap {
			gap = imp
			worst = i
		}
	}
	return gap, worst, nil
}

// greedyFill places an appliance's energy into the earliest window slots at
// the maximum level — the pre-smart-home placement used as the game's
// starting point. Residual energy below the maximum level is dropped into the
// next slot at the largest level that does not overshoot (close enough for an
// initial guess; the DP step immediately replaces it).
//
// An appliance whose energy exceeds window-length × max-level cannot fit, and
// silently dropping the residual would start the game from an iterate that
// under-reports demand; such appliances are rejected (wrapping
// dpsched.ErrInfeasible, like the DP step would for the quantized problem).
func greedyFill(a *appliance.Appliance, load []float64) error {
	if a.Start < 0 || a.Deadline >= len(load) || a.Start > a.Deadline {
		return fmt.Errorf("appliance %q: window [%d,%d] outside horizon %d: %w",
			a.Name, a.Start, a.Deadline, len(load), dpsched.ErrInfeasible)
	}
	remaining := a.Energy
	maxLv := a.MaxLevel()
	for t := a.Start; t <= a.Deadline && remaining > 1e-9; t++ {
		x := maxLv
		if x > remaining {
			x = remaining
		}
		load[t] += x
		remaining -= x
	}
	if remaining > 1e-9 {
		return fmt.Errorf("appliance %q: %.3f kWh of %.3f kWh do not fit window [%d,%d] at max level %.3f kW: %w",
			a.Name, remaining, a.Energy, a.Start, a.Deadline, maxLv, dpsched.ErrInfeasible)
	}
	return nil
}

// growFloats returns buf resized to n, reallocating only when capacity is
// insufficient. Contents are unspecified; callers overwrite.
func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// bestResponse solves customer n's Problem P1 given the other customers'
// total trading yOther, alternating the DP appliance step and the CE battery
// step (the inner while-loop of Algorithm 1). The context flows into the CE
// battery optimizer, whose per-iteration poll bounds the abort latency.
//
// cw supplies every scratch buffer (DP tables, CE population, trajectory and
// cost-snapshot vectors); the returned load, y and traj slices are freshly
// allocated — they escape into the Result — so reusing cw never aliases
// previously returned responses, and a reused cw yields bitwise-identical
// results to a fresh one.
func bestResponse(ctx context.Context, c *household.Customer, price timeseries.Series, pv []float64, yOther []float64, cfg Config, src *rng.Source, cw *custWorkspace) (load, y []float64, traj []float64, cost float64, err error) {
	h := len(price)

	// tradeCost evaluates the customer's per-slot cost Cₙʰ for trading v at
	// slot t given the others' total.
	tradeCost := func(t int, v float64) float64 {
		return cfg.Tariff.CustomerCost(price[t], yOther[t]+v, v)
	}

	useBattery := cfg.NetMetering && c.HasBattery()
	b0 := 0.0
	if useBattery {
		b0 = cfg.BatteryInitFrac * c.Battery.Capacity
	}
	// Battery trajectory points b[0..H]; flat start.
	cw.curTraj = growFloats(cw.curTraj, h+1)
	curTraj := cw.curTraj
	for i := range curTraj {
		curTraj[i] = b0
	}

	// batteryShift[t] = b[t+1] − b[t]: extra energy the customer must buy
	// (or may sell, if negative) at slot t beyond consumption − generation.
	batteryShift := func(tr []float64, t int) float64 { return tr[t+1] - tr[t] }

	cw.baseLoad = growFloats(cw.baseLoad, h)
	baseLoad := cw.baseLoad
	for t := 0; t < h; t++ {
		baseLoad[t] = c.BaseLoadAt(t)
	}

	// Inner alternation: DP appliances with battery fixed, then CE battery
	// with appliances fixed. Two rounds suffice in practice; the outer game
	// sweeps provide further refinement.
	//
	// snapshot is the one scratch buffer behind every makeCost closure of
	// this best response: ScheduleAll consumes each returned CostFn fully
	// before requesting the next, so overwriting the buffer between
	// appliances is safe and avoids a per-appliance allocation.
	cw.snapshot = growFloats(cw.snapshot, h)
	snapshot := cw.snapshot
	var schedLoad []float64
	const innerRounds = 2
	for round := 0; round < innerRounds; round++ {
		// --- Appliance step (line 4 of Algorithm 1). ---
		makeCost := func(current []float64) dpsched.CostFn {
			copy(snapshot, current)
			return func(t int, x float64) float64 {
				// Trading without this appliance's candidate power.
				base := baseLoad[t] + snapshot[t] - pv[t] + batteryShift(curTraj, t)
				return tradeCost(t, base+x) - tradeCost(t, base)
			}
		}
		var sErr error
		schedLoad, sErr = cw.dp.ScheduleAllLoad(c.Appliances, h, makeCost)
		if sErr != nil {
			return nil, nil, nil, 0, sErr
		}

		// --- Battery step (line 5 of Algorithm 1). ---
		if !useBattery {
			break
		}
		// Rate limits (when configured) enter the CE objective as steep
		// penalties and are enforced exactly by projection afterwards.
		maxCharge, maxDischarge := c.Battery.MaxCharge, c.Battery.MaxDischarge
		penaltyScale := 0.0
		if maxCharge > 0 || maxDischarge > 0 {
			for t := 0; t < h; t++ {
				if p := price[t]; p > penaltyScale {
					penaltyScale = p
				}
			}
			penaltyScale = 100 * (penaltyScale + 1)
		}
		objective := func(x []float64) float64 {
			// x is b[1..H]; b[0] is pinned at b0.
			total := 0.0
			prev := b0
			for t := 0; t < h; t++ {
				shift := x[t] - prev
				v := baseLoad[t] + schedLoad[t] - pv[t] + shift
				total += tradeCost(t, v)
				if maxCharge > 0 && shift > maxCharge {
					total += penaltyScale * (shift - maxCharge)
				}
				if maxDischarge > 0 && -shift > maxDischarge {
					total += penaltyScale * (-shift - maxDischarge)
				}
				prev = x[t]
			}
			return total
		}
		cw.lo = growFloats(cw.lo, h)
		cw.hi = growFloats(cw.hi, h)
		cw.init = growFloats(cw.init, h)
		lo, hi, init := cw.lo, cw.hi, cw.init
		for t := 0; t < h; t++ {
			lo[t] = 0
			hi[t] = c.Battery.Capacity
			init[t] = curTraj[t+1]
		}
		ceRes, ceErr := cw.ce.Minimize(ctx, objective, lo, hi, init, src, cfg.CE)
		if ceErr != nil {
			return nil, nil, nil, 0, ceErr
		}
		curTraj[0] = b0
		copy(curTraj[1:], ceRes.X)
		projectTrajectory(curTraj, c.Battery)
	}

	load = make([]float64, h)
	y = make([]float64, h)
	cost = 0.0
	for t := 0; t < h; t++ {
		load[t] = baseLoad[t] + schedLoad[t]
		y[t] = load[t] - pv[t] + batteryShift(curTraj, t)
		if !cfg.NetMetering && y[t] < 0 {
			// Without net metering there is no selling; consumption is the
			// trade (pv is zero in that mode, so this is defensive only).
			y[t] = load[t]
		}
		cost += tradeCost(t, y[t])
	}
	if useBattery {
		// Fresh copy: curTraj is workspace scratch and will be overwritten by
		// the next best response, but the trajectory escapes into the Result.
		traj = make([]float64, h+1)
		copy(traj, curTraj)
	}
	return load, y, traj, cost, nil
}
