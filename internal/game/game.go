// Package game implements the Net Metering Aware Energy Consumption
// Scheduling Game of Section 3.1 and its iterative solution (Algorithm 1).
//
// Each customer n minimizes the monetary cost Σₕ Cₙʰ of Problem P1 by
// choosing appliance power levels xₘʰ (via the dynamic-programming scheduler,
// package dpsched) and a battery-storage trajectory bₙ (via cross-entropy
// optimization, package ceopt), while the community total trading Σᵢ yᵢʰ —
// the shared information of the game — is held at its latest value. Customers
// update in Gauss-Seidel sweeps until the total trading vector converges;
// each best response can only lower that customer's cost, which empirically
// drives the quadratic-pricing game to a stable point in a handful of sweeps
// (Mohsenian-Rad et al. [9] prove convergence for the purchase-only convex
// case).
//
// Disabling net metering (Config.NetMetering = false) removes PV, battery and
// selling from the model: each customer's trading equals their consumption,
// which is the community model of [9] and [8] — the baseline the paper's
// NM-blind detector reasons with.
package game

import (
	"errors"
	"fmt"
	"math"

	"nmdetect/internal/appliance"
	"nmdetect/internal/battery"
	"nmdetect/internal/ceopt"
	"nmdetect/internal/dpsched"
	"nmdetect/internal/household"
	"nmdetect/internal/rng"
	"nmdetect/internal/tariff"
	"nmdetect/internal/timeseries"
)

// Config tunes the game solver.
type Config struct {
	// Tariff is the quadratic cost model (with its sell-back divisor W).
	Tariff tariff.Quadratic
	// NetMetering enables PV generation, battery scheduling and selling.
	NetMetering bool
	// BatteryInitFrac is the initial state of charge as a fraction of
	// capacity at slot 0.
	BatteryInitFrac float64
	// MaxSweeps bounds the Gauss-Seidel best-response sweeps.
	MaxSweeps int
	// Tol is the convergence tolerance on the per-slot total trading change
	// (kW) between consecutive sweeps.
	Tol float64
	// CE configures the battery trajectory optimizer.
	CE ceopt.Options
}

// DefaultConfig returns the solver configuration used by the experiments.
func DefaultConfig(t tariff.Quadratic, netMetering bool) Config {
	ce := ceopt.DefaultOptions()
	ce.Samples = 40
	ce.MaxIter = 25
	return Config{
		Tariff:          t,
		NetMetering:     netMetering,
		BatteryInitFrac: 0.3,
		MaxSweeps:       4,
		Tol:             1.0,
		CE:              ce,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.BatteryInitFrac < 0 || c.BatteryInitFrac > 1 {
		return fmt.Errorf("game: battery init fraction %v out of [0,1]", c.BatteryInitFrac)
	}
	if c.MaxSweeps < 1 {
		return fmt.Errorf("game: max sweeps %d must be positive", c.MaxSweeps)
	}
	if c.Tol <= 0 {
		return fmt.Errorf("game: tolerance %v must be positive", c.Tol)
	}
	if c.Tariff.W < 1 {
		return fmt.Errorf("game: tariff sell-back divisor %v must be >= 1", c.Tariff.W)
	}
	return c.CE.Validate()
}

// Result holds the solved community schedule.
type Result struct {
	// Load is the community consumption Lₕ = Σₙ lₙʰ per slot.
	Load timeseries.Series
	// GridDemand is the community net purchase Σₙ yₙʰ per slot (equals Load
	// minus renewable self-use and battery shifting; equals Load exactly
	// when net metering is disabled).
	GridDemand timeseries.Series
	// CustomerLoad[n][h] is lₙʰ.
	CustomerLoad [][]float64
	// CustomerTrading[n][h] is yₙʰ.
	CustomerTrading [][]float64
	// BatteryTraj[n] is bₙ (length H+1); nil entries for customers without
	// batteries or with net metering disabled.
	BatteryTraj [][]float64
	// Cost[n] is customer n's final monetary cost.
	Cost []float64
	// Sweeps is the number of best-response sweeps performed.
	Sweeps int
	// Converged reports whether the trading vector stabilized within Tol.
	Converged bool
}

// Solve runs Algorithm 1. price is the guideline price over the horizon
// (len == H ≥ 24); pv[n] is customer n's renewable forecast θₙ (ignored when
// net metering is disabled; may be nil then). The source drives CE sampling
// and must not be nil when net metering is enabled.
func Solve(customers []*household.Customer, price timeseries.Series, pv [][]float64, cfg Config, src *rng.Source) (*Result, error) {
	if len(customers) == 0 {
		return nil, errors.New("game: empty community")
	}
	prices := make([]timeseries.Series, len(customers))
	for i := range prices {
		prices[i] = price
	}
	return SolveMixed(customers, prices, pv, cfg, src)
}

// SolveMixed runs Algorithm 1 with per-customer guideline prices — the
// situation under a pricing cyberattack, where hacked meters receive a
// manipulated price while intact meters receive the published one. Each
// customer best-responds to their own price; all interact through the shared
// community trading total.
func SolveMixed(customers []*household.Customer, prices []timeseries.Series, pv [][]float64, cfg Config, src *rng.Source) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(customers) == 0 {
		return nil, errors.New("game: empty community")
	}
	if len(prices) != len(customers) {
		return nil, fmt.Errorf("game: %d price vectors for %d customers", len(prices), len(customers))
	}
	h := len(prices[0])
	if h < 24 {
		return nil, fmt.Errorf("game: horizon %d shorter than a day", h)
	}
	for n, p := range prices {
		if len(p) != h {
			return nil, fmt.Errorf("game: price vector %d has length %d, want %d", n, len(p), h)
		}
	}
	if cfg.NetMetering {
		if src == nil {
			return nil, errors.New("game: nil random source with net metering enabled")
		}
		if len(pv) != len(customers) {
			return nil, fmt.Errorf("game: pv traces %d != customers %d", len(pv), len(customers))
		}
		for n, tr := range pv {
			if len(tr) != h {
				return nil, fmt.Errorf("game: pv trace %d has length %d, want %d", n, len(tr), h)
			}
		}
	}

	n := len(customers)
	res := &Result{
		Load:            make(timeseries.Series, h),
		GridDemand:      make(timeseries.Series, h),
		CustomerLoad:    make([][]float64, n),
		CustomerTrading: make([][]float64, n),
		BatteryTraj:     make([][]float64, n),
		Cost:            make([]float64, n),
	}

	// Initialization: base load plus earliest-feasible appliance placement;
	// trading = load − θ (flat battery).
	totalY := make([]float64, h)
	for i, c := range customers {
		load := make([]float64, h)
		for t := 0; t < h; t++ {
			load[t] = c.BaseLoadAt(t)
		}
		for _, a := range c.Appliances {
			greedyFill(a, load)
		}
		res.CustomerLoad[i] = load
		y := make([]float64, h)
		for t := 0; t < h; t++ {
			y[t] = load[t]
			if cfg.NetMetering {
				y[t] -= pv[i][t]
			}
		}
		res.CustomerTrading[i] = y
		for t := 0; t < h; t++ {
			totalY[t] += y[t]
		}
	}

	// Gauss-Seidel best-response sweeps.
	for sweep := 0; sweep < cfg.MaxSweeps; sweep++ {
		res.Sweeps = sweep + 1
		maxDelta := 0.0
		for i, c := range customers {
			var csrc *rng.Source
			if cfg.NetMetering {
				csrc = src.Derive(fmt.Sprintf("ce-%d-%d", sweep, i))
			}
			oldY := res.CustomerTrading[i]
			// Remove this customer's trading from the shared total.
			for t := 0; t < h; t++ {
				totalY[t] -= oldY[t]
			}
			newLoad, newY, traj, cost, err := bestResponse(c, prices[i], pvRow(pv, i, cfg.NetMetering, h), totalY, cfg, csrc)
			if err != nil {
				return nil, fmt.Errorf("game: customer %d: %w", i, err)
			}
			for t := 0; t < h; t++ {
				if d := math.Abs(newY[t] - oldY[t]); d > maxDelta {
					maxDelta = d
				}
				totalY[t] += newY[t]
			}
			res.CustomerLoad[i] = newLoad
			res.CustomerTrading[i] = newY
			res.BatteryTraj[i] = traj
			res.Cost[i] = cost
		}
		if maxDelta < cfg.Tol {
			res.Converged = true
			break
		}
	}

	for t := 0; t < h; t++ {
		sumL, sumY := 0.0, 0.0
		for i := range customers {
			sumL += res.CustomerLoad[i][t]
			sumY += res.CustomerTrading[i][t]
		}
		res.Load[t] = sumL
		res.GridDemand[t] = sumY
	}
	return res, nil
}

func pvRow(pv [][]float64, i int, netMetering bool, h int) []float64 {
	if !netMetering || pv == nil {
		return make([]float64, h)
	}
	return pv[i]
}

// projectTrajectory walks a storage trajectory and clamps each step to the
// battery's rate limits and state bounds, making the CE solution physically
// feasible exactly (the CE penalty only discourages violations). No-op for
// unlimited batteries.
func projectTrajectory(traj []float64, b battery.Battery) {
	for t := 1; t < len(traj); t++ {
		delta := traj[t] - traj[t-1]
		if b.MaxCharge > 0 && delta > b.MaxCharge {
			delta = b.MaxCharge
		}
		if b.MaxDischarge > 0 && -delta > b.MaxDischarge {
			delta = -b.MaxDischarge
		}
		v := traj[t-1] + delta
		if v < 0 {
			v = 0
		}
		if v > b.Capacity {
			v = b.Capacity
		}
		traj[t] = v
	}
}

// EquilibriumGap measures how far a solved game is from a Nash point: for
// each customer it computes one more best response against the others'
// current trading and returns the largest cost improvement any customer
// could still realize (and that customer's index). A small gap certifies the
// Gauss-Seidel iteration converged to an ε-equilibrium; the paper's
// Algorithm 1 relies on this behavior without proving it for the
// battery-extended game, so the library makes it checkable.
func EquilibriumGap(customers []*household.Customer, prices []timeseries.Series, pv [][]float64, cfg Config, res *Result, src *rng.Source) (gap float64, worst int, err error) {
	if err := cfg.Validate(); err != nil {
		return 0, 0, err
	}
	if res == nil || len(res.CustomerTrading) != len(customers) {
		return 0, 0, errors.New("game: result does not match the community")
	}
	if len(prices) != len(customers) {
		return 0, 0, fmt.Errorf("game: %d price vectors for %d customers", len(prices), len(customers))
	}
	h := len(prices[0])

	totalY := make([]float64, h)
	for i := range customers {
		for t := 0; t < h; t++ {
			totalY[t] += res.CustomerTrading[i][t]
		}
	}

	worst = -1
	for i, c := range customers {
		yOther := make([]float64, h)
		for t := 0; t < h; t++ {
			yOther[t] = totalY[t] - res.CustomerTrading[i][t]
		}
		var csrc *rng.Source
		if cfg.NetMetering {
			if src == nil {
				return 0, 0, errors.New("game: nil source with net metering enabled")
			}
			csrc = src.Derive(fmt.Sprintf("gap-%d", i))
		}
		_, _, _, cost, err := bestResponse(c, prices[i], pvRow(pv, i, cfg.NetMetering, h), yOther, cfg, csrc)
		if err != nil {
			return 0, 0, fmt.Errorf("game: customer %d: %w", i, err)
		}
		if improvement := res.Cost[i] - cost; improvement > gap {
			gap = improvement
			worst = i
		}
	}
	return gap, worst, nil
}

// greedyFill places an appliance's energy into the earliest window slots at
// the maximum level — the pre-smart-home placement used as the game's
// starting point. Residual energy below the maximum level is dropped into the
// next slot at the largest level that does not overshoot (close enough for an
// initial guess; the DP step immediately replaces it).
func greedyFill(a *appliance.Appliance, load []float64) {
	remaining := a.Energy
	maxLv := a.MaxLevel()
	for t := a.Start; t <= a.Deadline && remaining > 1e-9; t++ {
		x := maxLv
		if x > remaining {
			x = remaining
		}
		load[t] += x
		remaining -= x
	}
}

// bestResponse solves customer n's Problem P1 given the other customers'
// total trading yOther, alternating the DP appliance step and the CE battery
// step (the inner while-loop of Algorithm 1).
func bestResponse(c *household.Customer, price timeseries.Series, pv []float64, yOther []float64, cfg Config, src *rng.Source) (load, y []float64, traj []float64, cost float64, err error) {
	h := len(price)

	// tradeCost evaluates the customer's per-slot cost Cₙʰ for trading v at
	// slot t given the others' total.
	tradeCost := func(t int, v float64) float64 {
		return cfg.Tariff.CustomerCost(price[t], yOther[t]+v, v)
	}

	useBattery := cfg.NetMetering && c.HasBattery()
	b0 := 0.0
	if useBattery {
		b0 = cfg.BatteryInitFrac * c.Battery.Capacity
	}
	// Battery trajectory points b[0..H]; flat start.
	curTraj := make([]float64, h+1)
	for i := range curTraj {
		curTraj[i] = b0
	}

	// batteryShift[t] = b[t+1] − b[t]: extra energy the customer must buy
	// (or may sell, if negative) at slot t beyond consumption − generation.
	batteryShift := func(tr []float64, t int) float64 { return tr[t+1] - tr[t] }

	baseLoad := make([]float64, h)
	for t := 0; t < h; t++ {
		baseLoad[t] = c.BaseLoadAt(t)
	}

	// Inner alternation: DP appliances with battery fixed, then CE battery
	// with appliances fixed. Two rounds suffice in practice; the outer game
	// sweeps provide further refinement.
	var schedLoad []float64
	const innerRounds = 2
	for round := 0; round < innerRounds; round++ {
		// --- Appliance step (line 4 of Algorithm 1). ---
		makeCost := func(current []float64) dpsched.CostFn {
			snapshot := make([]float64, h)
			copy(snapshot, current)
			return func(t int, x float64) float64 {
				// Trading without this appliance's candidate power.
				base := baseLoad[t] + snapshot[t] - pv[t] + batteryShift(curTraj, t)
				return tradeCost(t, base+x) - tradeCost(t, base)
			}
		}
		var sErr error
		_, schedLoad, sErr = dpsched.ScheduleAll(c.Appliances, h, makeCost)
		if sErr != nil {
			return nil, nil, nil, 0, sErr
		}

		// --- Battery step (line 5 of Algorithm 1). ---
		if !useBattery {
			break
		}
		// Rate limits (when configured) enter the CE objective as steep
		// penalties and are enforced exactly by projection afterwards.
		maxCharge, maxDischarge := c.Battery.MaxCharge, c.Battery.MaxDischarge
		penaltyScale := 0.0
		if maxCharge > 0 || maxDischarge > 0 {
			for t := 0; t < h; t++ {
				if p := price[t]; p > penaltyScale {
					penaltyScale = p
				}
			}
			penaltyScale = 100 * (penaltyScale + 1)
		}
		objective := func(x []float64) float64 {
			// x is b[1..H]; b[0] is pinned at b0.
			total := 0.0
			prev := b0
			for t := 0; t < h; t++ {
				shift := x[t] - prev
				v := baseLoad[t] + schedLoad[t] - pv[t] + shift
				total += tradeCost(t, v)
				if maxCharge > 0 && shift > maxCharge {
					total += penaltyScale * (shift - maxCharge)
				}
				if maxDischarge > 0 && -shift > maxDischarge {
					total += penaltyScale * (-shift - maxDischarge)
				}
				prev = x[t]
			}
			return total
		}
		lo := make([]float64, h)
		hi := make([]float64, h)
		init := make([]float64, h)
		for t := 0; t < h; t++ {
			hi[t] = c.Battery.Capacity
			init[t] = curTraj[t+1]
		}
		ceRes, ceErr := ceopt.Minimize(objective, lo, hi, init, src, cfg.CE)
		if ceErr != nil {
			return nil, nil, nil, 0, ceErr
		}
		curTraj[0] = b0
		copy(curTraj[1:], ceRes.X)
		projectTrajectory(curTraj, c.Battery)
	}

	load = make([]float64, h)
	y = make([]float64, h)
	cost = 0.0
	for t := 0; t < h; t++ {
		load[t] = baseLoad[t] + schedLoad[t]
		y[t] = load[t] - pv[t] + batteryShift(curTraj, t)
		if !cfg.NetMetering && y[t] < 0 {
			// Without net metering there is no selling; consumption is the
			// trade (pv is zero in that mode, so this is defensive only).
			y[t] = load[t]
		}
		cost += tradeCost(t, y[t])
	}
	if useBattery {
		traj = curTraj
	}
	return load, y, traj, cost, nil
}
