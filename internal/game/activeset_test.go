package game

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"

	"nmdetect/internal/appliance"
	"nmdetect/internal/dpsched"
	"nmdetect/internal/household"
	"nmdetect/internal/obs"
	"nmdetect/internal/rng"
	"nmdetect/internal/solar"
	"nmdetect/internal/timeseries"
)

// seededCommunity is jacobiCommunity with a caller-chosen seed, for the
// multi-seed invariance sweep.
func seededCommunity(t *testing.T, seed uint64) ([]*household.Customer, [][]float64, Config) {
	t.Helper()
	customers, err := household.DefaultGenerator().Generate(24, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	pv, err := household.CommunityPVTraces(customers, solar.DefaultModel(), 1, rng.New(seed+100))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(testTariff(t), true)
	cfg.MaxSweeps = 2
	cfg.CE.Samples = 10
	cfg.CE.MaxIter = 5
	return customers, pv, cfg
}

func gobBytes(t *testing.T, res *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSolveWSActiveTolZeroIdentity is the ActiveTol=0 contract: solving
// through a reused workspace — including a workspace that already served
// other solves — is gob-byte identical to the legacy allocating Solve, on
// both the Gauss-Seidel and the block-Jacobi schedule.
func TestSolveWSActiveTolZeroIdentity(t *testing.T) {
	customers, pv, cfg := jacobiCommunity(t)
	price := variedPrice()

	for _, block := range []int{0, 8} {
		cfg.JacobiBlock = block
		legacy, err := Solve(nil, customers, price, pv, cfg, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		want := gobBytes(t, legacy)

		ws := NewWorkspace()
		for trial := 0; trial < 3; trial++ {
			got, err := SolveWS(nil, ws, customers, price, pv, cfg, rng.New(7))
			if err != nil {
				t.Fatal(err)
			}
			if !resultsIdentical(legacy, got) {
				t.Fatalf("block %d trial %d: workspace solve differs from legacy", block, trial)
			}
			if !bytes.Equal(want, gobBytes(t, got)) {
				t.Fatalf("block %d trial %d: workspace solve not gob-byte identical to legacy", block, trial)
			}
		}
		// Earlier Results must survive workspace reuse untouched (ownership
		// contract: nothing in a Result aliases the workspace).
		if !bytes.Equal(want, gobBytes(t, legacy)) {
			t.Fatalf("block %d: legacy result mutated by later workspace solves", block)
		}
	}
}

// TestActiveSetEquilibriumInvariance bounds what ActiveTol trades away: for
// small tolerances the active-set solution's equilibrium gap stays within 2x
// the legacy solution's gap (plus an epsilon for gap==0), across 3 seeds.
func TestActiveSetEquilibriumInvariance(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		customers, pv, cfg := seededCommunity(t, seed)
		price := variedPrice()
		prices := make([]timeseries.Series, len(customers))
		for i := range prices {
			prices[i] = price
		}

		legacy, err := Solve(nil, customers, price, pv, cfg, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		legacyGap, _, err := EquilibriumGap(nil, customers, prices, pv, cfg, legacy, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}

		for _, tol := range []float64{1e-9, 1e-6} {
			acfg := cfg
			acfg.ActiveTol = tol
			res, err := Solve(nil, customers, price, pv, acfg, rng.New(seed))
			if err != nil {
				t.Fatal(err)
			}
			// The gap probe itself runs with ActiveTol (it only gates sweeps,
			// which the probe does not perform) — keep the same config so the
			// comparison is apples to apples.
			gap, _, err := EquilibriumGap(nil, customers, prices, pv, acfg, res, rng.New(seed))
			if err != nil {
				t.Fatal(err)
			}
			if bound := 2*legacyGap + 1e-9; gap > bound {
				t.Fatalf("seed %d tol %g: active-set gap %v exceeds bound %v (legacy gap %v)",
					seed, tol, gap, bound, legacyGap)
			}
		}
	}
}

// TestActiveSetSkipsAndDeterminism drives a tolerance large enough to gate
// customers and checks (a) the obs counters report skips, (b) the active-set
// path is deterministic: two identical solves agree bitwise. The no-NM model
// is used because its best responses are deterministic (no CE battery
// redraws), so customers actually go stationary after the early sweeps —
// exactly the structure the gate exploits.
func TestActiveSetSkipsAndDeterminism(t *testing.T) {
	// One flexible customer plus two base-load-only customers: after the
	// flexible customer settles (deterministic DP, strictly varying price so
	// optima are unique), the other two see an unchanged neighborhood and
	// must be gated out instead of re-solved.
	base := make([]float64, 24)
	for h := range base {
		base[h] = 0.5
	}
	flexible := &household.Customer{
		ID: 0,
		Appliances: []*appliance.Appliance{{
			Name: "flex", Levels: []float64{1.0}, Energy: 2, Start: 0, Deadline: 5,
		}},
		BaseLoad: base,
	}
	customers := []*household.Customer{
		flexible,
		{ID: 1, BaseLoad: base},
		{ID: 2, BaseLoad: base},
	}
	// Strictly decreasing price: no cost ties, and the optimum (run late)
	// differs from the greedy initial placement (run early), so the first
	// sweep genuinely moves the flexible customer.
	price := make(timeseries.Series, 24)
	for h := range price {
		price[h] = 0.10 - 0.001*float64(h)
	}
	cfg := DefaultConfig(testTariff(t), false)
	cfg.MaxSweeps = 4
	cfg.Tol = 1e-12
	cfg.ActiveTol = 0.01

	var buf bytes.Buffer
	sink := obs.NewSink(&buf)
	ctx := obs.With(context.Background(), sink)

	a, err := SolveWS(ctx, NewWorkspace(), customers, price, nil, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	sink.Close()
	out := buf.String()
	counters := map[string]int64{}
	for _, line := range strings.Split(out, "\n") {
		if line == "" {
			continue
		}
		var rec struct {
			Type string `json:"type"`
			Name string `json:"name"`
			N    int64  `json:"n"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err == nil && rec.Type == "counter" {
			counters[rec.Name] = rec.N
		}
	}
	if counters["game.active.skipped"] <= 0 {
		t.Fatalf("gate never skipped a customer at tol %v (counters %v):\n%s", cfg.ActiveTol, counters, out)
	}
	if counters["game.active.resolved"] <= 0 {
		t.Fatalf("gate never re-solved a customer (counters %v)", counters)
	}

	b, err := SolveWS(nil, NewWorkspace(), customers, price, nil, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !resultsIdentical(a, b) {
		t.Fatal("active-set solve is not deterministic")
	}
}

// TestGreedyFillRejectsOverfullAppliance is the regression test for the
// latent bug where greedyFill silently dropped residual energy that could
// never fit the appliance window.
func TestGreedyFillRejectsOverfullAppliance(t *testing.T) {
	base := make([]float64, 24)
	c := &household.Customer{
		ID: 0,
		Appliances: []*appliance.Appliance{{
			Name: "overfull", Levels: []float64{1.0}, Energy: 10, Start: 0, Deadline: 3,
		}},
		BaseLoad: base,
	}
	cfg := DefaultConfig(testTariff(t), false)
	_, err := Solve(nil, []*household.Customer{c}, variedPrice(), nil, cfg, nil)
	if err == nil {
		t.Fatal("Solve accepted an appliance whose energy cannot fit its window")
	}
	if !errors.Is(err, dpsched.ErrInfeasible) {
		t.Fatalf("error %v does not wrap dpsched.ErrInfeasible", err)
	}
	if !strings.Contains(err.Error(), "customer 0") || !strings.Contains(err.Error(), "overfull") {
		t.Fatalf("error %v does not identify the customer and appliance", err)
	}

	// Direct unit check: residual is reported, fitting energy is not.
	load := make([]float64, 24)
	if err := greedyFill(&appliance.Appliance{Name: "x", Levels: []float64{1.0}, Energy: 10, Start: 0, Deadline: 3}, load); err == nil {
		t.Fatal("greedyFill accepted 10 kWh into a 4-slot window at 1 kW")
	}
	if err := greedyFill(&appliance.Appliance{Name: "x", Levels: []float64{1.0}, Energy: 4, Start: 0, Deadline: 3}, load); err != nil {
		t.Fatalf("greedyFill rejected a feasible appliance: %v", err)
	}
	if err := greedyFill(&appliance.Appliance{Name: "x", Levels: []float64{1.0}, Energy: 1, Start: 20, Deadline: 30}, load); err == nil {
		t.Fatal("greedyFill accepted a window past the horizon")
	}
}

func TestConfigValidateActiveTol(t *testing.T) {
	cfg := DefaultConfig(testTariff(t), false)
	for _, bad := range []float64{-1, math.NaN(), math.Inf(1)} {
		c := cfg
		c.ActiveTol = bad
		if c.Validate() == nil {
			t.Fatalf("Validate accepted ActiveTol %v", bad)
		}
	}
	c := cfg
	c.ActiveTol = 0.25
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate rejected ActiveTol 0.25: %v", err)
	}
}
