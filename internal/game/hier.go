package game

import (
	"context"
	"fmt"
	"math"

	"nmdetect/internal/household"
	"nmdetect/internal/obs"
	"nmdetect/internal/parallel"
	"nmdetect/internal/rng"
	"nmdetect/internal/timeseries"
)

// Range is a half-open customer index interval [Start, End) — one shard of a
// hierarchical solve.
type Range struct{ Start, End int }

// ShardPlan partitions n customers into at most `shards` contiguous spans of
// near-equal size (the first n%shards spans are one customer larger). The
// plan is a pure function of (n, shards): it never depends on Workers, the
// runtime, or anything drawn from an RNG, so the shard partition is part of
// the deterministic solution path exactly like JacobiBlock's block partition.
// shards is clamped to [1, n]; n must be positive.
func ShardPlan(n, shards int) []Range {
	if n < 1 {
		panic(fmt.Sprintf("game: shard plan for %d customers", n)) // lint:allow-panic — unreachable: SolveMixedWS validates len(customers) > 1 before routing here
	}
	if shards < 1 {
		shards = 1
	}
	if shards > n {
		shards = n
	}
	plan := make([]Range, shards)
	base, rem := n/shards, n%shards
	start := 0
	for s := range plan {
		size := base
		if s < rem {
			size++
		}
		plan[s] = Range{Start: start, End: start + size}
		start += size
	}
	return plan
}

// solveHierarchical is the outer tier of a sharded solve (Config.Shards > 1):
// the community is partitioned by ShardPlan, each shard runs the flat solver
// on its own sub-community (the inner tier — Gauss-Seidel or block-Jacobi,
// per Config.JacobiBlock), and the shards interact only through their
// per-slot aggregate trading vectors, exchanged in an outer Jacobi loop via
// Config.ExternalY. Coupling state is O(H) per shard per outer sweep; no
// customer ever observes another shard's per-customer detail.
//
// Determinism: the shard partition is a pure function of (N, Shards); shard
// inner solves draw CE randomness from sources derived per (outer sweep,
// shard) — derivation never advances the parent — and write only their own
// results slot; aggregates are recomputed in shard index order after a full
// barrier. The solution is therefore a function of the configuration knobs
// (Shards, OuterSweeps, OuterTol, JacobiBlock, ActiveTol) and never of
// Workers or the fan-out schedule.
func solveHierarchical(ctx context.Context, ws *Workspace, customers []*household.Customer, prices []timeseries.Series, pv [][]float64, cfg Config, src *rng.Source) (*Result, error) {
	sink := obs.From(ctx)
	defer sink.Span("game.solve.outer")()

	n := len(customers)
	h := len(prices[0])
	plan := ShardPlan(n, cfg.Shards)
	shards := len(plan)
	if ws == nil {
		ws = NewWorkspace()
	}
	children := ws.shardChildren(shards)

	outerMax := cfg.OuterSweeps
	if outerMax < 1 {
		outerMax = 2
	}
	outerTol := cfg.OuterTol
	if outerTol <= 0 {
		outerTol = cfg.Tol
	}

	// Warm-start aggregates from the same greedy placement the flat solver
	// initializes from: the first outer sweep already prices each shard
	// against a realistic (if unrefined) picture of its neighbors instead of
	// an empty grid.
	agg := make([][]float64, shards)
	loadBuf := make([]float64, h)
	for s, r := range plan {
		a := make([]float64, h)
		for i := r.Start; i < r.End; i++ {
			c := customers[i]
			for t := 0; t < h; t++ {
				loadBuf[t] = c.BaseLoadAt(t)
			}
			for _, ap := range c.Appliances {
				if err := greedyFill(ap, loadBuf); err != nil {
					return nil, fmt.Errorf("game: customer %d: %w", i, err)
				}
			}
			for t := 0; t < h; t++ {
				y := loadBuf[t]
				if cfg.NetMetering {
					y -= pv[i][t]
				}
				a[t] += y
			}
		}
		agg[s] = a
	}

	results := make([]*Result, shards)
	exts := make([][]float64, shards)
	for s := range exts {
		exts[s] = make([]float64, h)
	}
	totalAgg := make([]float64, h)

	converged := false
	outerDone := 0
	var skipped, resolved int64
	for sweep := 0; sweep < outerMax; sweep++ {
		outerDone = sweep + 1
		for t := 0; t < h; t++ {
			sum := 0.0
			for s := 0; s < shards; s++ {
				sum += agg[s][t]
			}
			if cfg.ExternalY != nil {
				sum += cfg.ExternalY[t]
			}
			totalAgg[t] = sum
		}
		// Jacobi fan-out: every shard solves against the aggregates frozen at
		// sweep start. Each shard writes only results[s] and its own exts[s]
		// buffer, reads only frozen state, and owns child workspace s.
		err := parallel.ForEach(ctx, cfg.Workers, shards, func(s int) error {
			r := plan[s]
			ext := exts[s]
			for t := 0; t < h; t++ {
				ext[t] = totalAgg[t] - agg[s][t]
			}
			scfg := cfg
			scfg.Shards, scfg.OuterSweeps, scfg.OuterTol = 0, 0, 0
			scfg.ExternalY = ext
			var spv [][]float64
			if pv != nil {
				spv = pv[r.Start:r.End]
			}
			var ssrc *rng.Source
			if src != nil {
				ssrc = src.Derive(fmt.Sprintf("hier-%d-%d", sweep, s))
			}
			sub, err := SolveMixedWS(ctx, children[s], customers[r.Start:r.End], prices[r.Start:r.End], spv, scfg, ssrc)
			if err != nil {
				return fmt.Errorf("game: shard %d (customers %d..%d): %w", s, r.Start, r.End-1, err)
			}
			results[s] = sub
			return nil
		})
		if err != nil {
			return nil, err
		}
		// Barrier passed: refresh aggregates in shard index order. A shard's
		// new aggregate is its sub-result's GridDemand — already summed over
		// the shard's customers in index order by the flat solver. The outer
		// residual is the largest per-slot aggregate move of any shard.
		maxMove := 0.0
		for s := range plan {
			sub := results[s]
			for t := 0; t < h; t++ {
				if d := math.Abs(sub.GridDemand[t] - agg[s][t]); d > maxMove {
					maxMove = d
				}
				agg[s][t] = sub.GridDemand[t]
			}
			skipped += sub.Skipped
			resolved += sub.Resolved
			// Per-shard counters; the fmt.Sprintf key stays behind the nil
			// check so the disabled path allocates nothing.
			if sink != nil {
				sink.Count(fmt.Sprintf("game.shard.%03d.solves", s), 1)
				sink.Count(fmt.Sprintf("game.shard.%03d.sweeps", s), int64(sub.Sweeps))
				if cfg.ActiveTol > 0 {
					sink.Count(fmt.Sprintf("game.shard.%03d.skipped", s), sub.Skipped)
					sink.Count(fmt.Sprintf("game.shard.%03d.resolved", s), sub.Resolved)
				}
			}
		}
		sink.Count("game.outer.sweeps", 1)
		sink.Observe("game.outer.residual", maxMove)
		if maxMove < outerTol {
			converged = true
			break
		}
	}

	// Assemble the community result from the final outer iteration. Shard
	// sub-results own their memory (the flat solver's contract), so their
	// rows are adopted directly; community totals are re-summed over the full
	// customer index order, matching the flat solver's final reduction shape.
	res := &Result{
		Load:            make(timeseries.Series, h),
		GridDemand:      make(timeseries.Series, h),
		CustomerLoad:    make([][]float64, n),
		CustomerTrading: make([][]float64, n),
		BatteryTraj:     make([][]float64, n),
		Cost:            make([]float64, n),
		Outer:           outerDone,
		Converged:       converged,
		Skipped:         skipped,
		Resolved:        resolved,
	}
	for s, r := range plan {
		sub := results[s]
		copy(res.CustomerLoad[r.Start:r.End], sub.CustomerLoad)
		copy(res.CustomerTrading[r.Start:r.End], sub.CustomerTrading)
		copy(res.BatteryTraj[r.Start:r.End], sub.BatteryTraj)
		copy(res.Cost[r.Start:r.End], sub.Cost)
		if sub.Sweeps > res.Sweeps {
			res.Sweeps = sub.Sweeps
		}
	}
	for t := 0; t < h; t++ {
		sumL, sumY := 0.0, 0.0
		for i := 0; i < n; i++ {
			sumL += res.CustomerLoad[i][t]
			sumY += res.CustomerTrading[i][t]
		}
		res.Load[t] = sumL
		res.GridDemand[t] = sumY
	}
	return res, nil
}
