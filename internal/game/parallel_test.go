package game

import (
	"context"
	"strings"
	"testing"

	"nmdetect/internal/household"
	"nmdetect/internal/parallel"
	"nmdetect/internal/rng"
	"nmdetect/internal/solar"
	"nmdetect/internal/timeseries"
)

// jacobiCommunity draws the seeded 24-customer net-metering community the
// determinism contract is asserted on, with a reduced CE budget so the
// bitwise comparisons stay fast.
func jacobiCommunity(t *testing.T) ([]*household.Customer, [][]float64, Config) {
	t.Helper()
	customers, err := household.DefaultGenerator().Generate(24, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	pv, err := household.CommunityPVTraces(customers, solar.DefaultModel(), 1, rng.New(43))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(testTariff(t), true)
	cfg.MaxSweeps = 2
	cfg.CE.Samples = 10
	cfg.CE.MaxIter = 5
	return customers, pv, cfg
}

func variedPrice() timeseries.Series {
	p := make(timeseries.Series, 24)
	for h := range p {
		p[h] = 0.05 + 0.002*float64(h%7)
	}
	return p
}

// resultsIdentical compares two solutions bitwise.
func resultsIdentical(a, b *Result) bool {
	if a.Sweeps != b.Sweeps || a.Converged != b.Converged {
		return false
	}
	eq := func(x, y []float64) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if !eq(a.Load, b.Load) || !eq(a.GridDemand, b.GridDemand) || !eq(a.Cost, b.Cost) {
		return false
	}
	for i := range a.CustomerLoad {
		if !eq(a.CustomerLoad[i], b.CustomerLoad[i]) || !eq(a.CustomerTrading[i], b.CustomerTrading[i]) {
			return false
		}
		if !eq(a.BatteryTraj[i], b.BatteryTraj[i]) {
			return false
		}
	}
	return true
}

func TestSolveWorkers1MatchesLegacySequential(t *testing.T) {
	// The refactored sweep with Workers: 1 / JacobiBlock: 1 must walk the
	// exact code path (and floating-point update order) of the historical
	// Gauss-Seidel solver, here represented by the zero-valued knobs.
	customers, pv, cfg := jacobiCommunity(t)
	price := variedPrice()
	legacy, err := Solve(context.Background(), customers, price, pv, cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	seq := cfg
	seq.Workers = 1
	seq.JacobiBlock = 1
	got, err := Solve(context.Background(), customers, price, pv, seq, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if !resultsIdentical(legacy, got) {
		t.Fatal("Workers:1/JacobiBlock:1 diverged from the sequential reference")
	}
}

func TestSolveJacobiBitwiseAcrossWorkerCounts(t *testing.T) {
	// For a fixed seed and block size, the block-Jacobi solution must be
	// bitwise identical for every worker count, and repeated runs with
	// Workers: 4 must be bitwise identical to each other.
	prev := parallel.SetLimit(8)
	defer parallel.SetLimit(prev)

	customers, pv, cfg := jacobiCommunity(t)
	cfg.JacobiBlock = 8
	price := variedPrice()

	solveWith := func(workers int) *Result {
		c := cfg
		c.Workers = workers
		res, err := Solve(context.Background(), customers, price, pv, c, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := solveWith(1)
	for _, workers := range []int{4, 8} {
		if !resultsIdentical(ref, solveWith(workers)) {
			t.Fatalf("Workers:%d diverged from Workers:1 at JacobiBlock 8", workers)
		}
	}
	if !resultsIdentical(solveWith(4), solveWith(4)) {
		t.Fatal("repeated Workers:4 runs diverged")
	}
}

func TestEquilibriumGapJacobiBounded(t *testing.T) {
	// The Jacobi schedule trades total freshness for parallelism; its
	// equilibrium quality must stay certified: after a full sweep budget
	// the residual best-response improvement is a small fraction of the
	// community cost, just as for the Gauss-Seidel reference.
	customers := smallCommunity(t)
	price := flatPrice(0.1)
	prices := []timeseries.Series{price, price, price}

	cfg := DefaultConfig(testTariff(t), false)
	cfg.MaxSweeps = 10
	cfg.JacobiBlock = 2
	res, err := Solve(context.Background(), customers, price, nil, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("Jacobi game did not converge in %d sweeps", res.Sweeps)
	}
	assertGapBounded := func(cfg Config, res *Result) {
		t.Helper()
		gap, worst, err := EquilibriumGap(context.Background(), customers, prices, nil, cfg, res, nil)
		if err != nil {
			t.Fatal(err)
		}
		totalCost := 0.0
		for _, c := range res.Cost {
			totalCost += c
		}
		if gap > 0.01*totalCost {
			t.Fatalf("Jacobi equilibrium gap %v (customer %d) is %v%% of total cost",
				gap, worst, 100*gap/totalCost)
		}
	}
	assertGapBounded(cfg, res)

	// Whole-community block (pure Jacobi): simultaneous best responses may
	// oscillate between cost-equivalent schedules, so the trading-delta
	// Converged flag need not fire — but the equilibrium gap must still be
	// bounded, which is exactly why the gap is the Jacobi-mode certificate.
	pure := cfg
	pure.JacobiBlock = len(customers)
	pureRes, err := Solve(context.Background(), customers, price, nil, pure, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertGapBounded(pure, pureRes)
}

func TestEquilibriumGapRejectsMalformedResult(t *testing.T) {
	customers := smallCommunity(t)
	cfg := DefaultConfig(testTariff(t), false)
	price := flatPrice(0.1)
	prices := []timeseries.Series{price, price, price}
	res, err := Solve(context.Background(), customers, price, nil, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Truncated trading row: must return an error, not panic.
	bad := *res
	bad.CustomerTrading = append([][]float64(nil), res.CustomerTrading...)
	bad.CustomerTrading[1] = bad.CustomerTrading[1][:12]
	if _, _, err := EquilibriumGap(context.Background(), customers, prices, nil, cfg, &bad, nil); err == nil {
		t.Error("truncated trading vector accepted")
	} else if !strings.Contains(err.Error(), "trading vector") {
		t.Errorf("unexpected error: %v", err)
	}

	// Cost vector of the wrong length likewise.
	bad2 := *res
	bad2.Cost = res.Cost[:1]
	if _, _, err := EquilibriumGap(context.Background(), customers, prices, nil, cfg, &bad2, nil); err == nil {
		t.Error("short cost vector accepted")
	}
}

func TestSolveConfigValidatesParallelKnobs(t *testing.T) {
	customers := smallCommunity(t)
	cfg := DefaultConfig(testTariff(t), false)
	cfg.Workers = -1
	if _, err := Solve(context.Background(), customers, flatPrice(0.1), nil, cfg, nil); err == nil {
		t.Error("negative Workers accepted")
	}
	cfg = DefaultConfig(testTariff(t), false)
	cfg.JacobiBlock = -2
	if _, err := Solve(context.Background(), customers, flatPrice(0.1), nil, cfg, nil); err == nil {
		t.Error("negative JacobiBlock accepted")
	}
}
