package game

import (
	"context"
	"errors"
	"math"
	"testing"

	"nmdetect/internal/household"
	"nmdetect/internal/rng"
	"nmdetect/internal/solar"
)

// A NaN guideline price poisons the CE battery objective: the CE watchdog
// reports divergence, the game restores its last-good iterate and retries
// with salted streams, and once the budget is exhausted the solve surfaces
// the typed sentinel instead of a NaN schedule.
func TestSolveDivergesOnNaNPrice(t *testing.T) {
	customers := smallCommunity(t)
	cfg := DefaultConfig(testTariff(t), true)
	cfg.MaxSweeps = 2
	// Slot 18: evening, no PV export, so community trading is positive and
	// the NaN actually reaches the cost model (midday slots can be clamped
	// to zero cost when the community is a net seller).
	price := flatPrice(0.1)
	price[18] = math.NaN()
	pv := [][]float64{middayPV(4), make([]float64, 24), middayPV(3)}
	_, err := Solve(context.Background(), customers, price, pv, cfg, rng.New(7))
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("want ErrDiverged, got %v", err)
	}
}

// A NaN PV trace on a battery-less customer bypasses the CE layer entirely:
// the customer's trading vector goes NaN, and it is the game's own
// sweep-boundary finiteness check that must catch it.
func TestSolveDivergesOnNaNPV(t *testing.T) {
	base := make([]float64, 24)
	for h := range base {
		base[h] = 0.5
	}
	c := &household.Customer{
		ID:       0,
		BaseLoad: base,
		Panel:    solar.Panel{CapacityKW: 4, Orientation: 1},
	}
	if err := c.Validate(24); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(testTariff(t), true)
	cfg.MaxSweeps = 4
	pv := middayPV(4)
	pv[12] = math.NaN()
	_, err := Solve(context.Background(), []*household.Customer{c}, flatPrice(0.1), [][]float64{pv}, cfg, rng.New(7))
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("want ErrDiverged, got %v", err)
	}
}

func TestValidateRejectsNonFinite(t *testing.T) {
	base := DefaultConfig(testTariff(t), true)
	cases := []func(*Config){
		func(c *Config) { c.BatteryInitFrac = math.NaN() },
		func(c *Config) { c.Tol = math.NaN() },
		func(c *Config) { c.Tol = math.Inf(1) },
		func(c *Config) { c.Tariff.W = math.NaN() },
		func(c *Config) { c.CE.EliteFrac = math.NaN() },
		func(c *Config) { c.CE.Smoothing = math.NaN() },
		func(c *Config) { c.CE.InitStdFrac = math.Inf(1) },
		func(c *Config) { c.CE.StdTol = math.NaN() },
	}
	for i, mutate := range cases {
		cfg := base
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: non-finite config unexpectedly valid", i)
		}
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("base config invalid: %v", err)
	}
}
