package game

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"nmdetect/internal/parallel"
	"nmdetect/internal/rng"
)

// countingCtx cancels itself after limit Err polls. Done returns nil on
// purpose: the cancellation contract forbids blocking on Done, so a solver
// that did would hang this test instead of passing silently.
type countingCtx struct {
	polls atomic.Int64
	limit int64
}

func (c *countingCtx) Deadline() (time.Time, bool)       { return time.Time{}, false }
func (c *countingCtx) Done() <-chan struct{}             { return nil }
func (c *countingCtx) Value(key interface{}) interface{} { return nil }
func (c *countingCtx) Err() error {
	if c.polls.Add(1) > c.limit {
		return context.Canceled
	}
	return nil
}

func TestSolvePreCancelled(t *testing.T) {
	customers := smallCommunity(t)
	cfg := DefaultConfig(testTariff(t), false)
	cfg.MaxSweeps = 2
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Solve(ctx, customers, flatPrice(0.1), nil, cfg, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out := parallel.Outstanding(); out != 0 {
		t.Fatalf("%d helper tokens leaked", out)
	}
}

func TestSolveCancelledMidSweepAbortsPromptly(t *testing.T) {
	customers, pv, cfg := jacobiCommunity(t)
	cfg.MaxSweeps = 5

	// Count how many Err polls one full solve performs, then allow a solve
	// only a fraction of that budget: the solve must abort inside the first
	// sweep, well before the budget a completed run needs.
	probe := &countingCtx{limit: 1 << 60}
	if _, err := Solve(probe, customers, variedPrice(), pv, cfg, rng.New(7)); err != nil {
		t.Fatal(err)
	}
	full := probe.polls.Load()
	if full < 10 {
		t.Fatalf("solver polled ctx only %d times over %d sweeps; cancellation would be too coarse", full, cfg.MaxSweeps)
	}

	ctx := &countingCtx{limit: full / int64(cfg.MaxSweeps) / 2}
	_, err := Solve(ctx, customers, variedPrice(), pv, cfg, rng.New(7))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ctx.polls.Load(); got > full/int64(cfg.MaxSweeps)*2 {
		t.Fatalf("cancelled solve kept polling: %d polls, one sweep is ~%d", got, full/int64(cfg.MaxSweeps))
	}
	if out := parallel.Outstanding(); out != 0 {
		t.Fatalf("%d helper tokens leaked after cancelled solve", out)
	}
}

func TestSolveCancelledParallelNoLeak(t *testing.T) {
	customers, pv, cfg := jacobiCommunity(t)
	cfg.Workers = 4
	cfg.JacobiBlock = 8
	ctx := &countingCtx{limit: 20}
	if _, err := Solve(ctx, customers, variedPrice(), pv, cfg, rng.New(7)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out := parallel.Outstanding(); out != 0 {
		t.Fatalf("%d helper tokens leaked from parallel cancelled solve", out)
	}
}

func TestNilContextNeverCancels(t *testing.T) {
	customers := smallCommunity(t)
	cfg := DefaultConfig(testTariff(t), false)
	cfg.MaxSweeps = 1
	if _, err := Solve(nil, customers, flatPrice(0.1), nil, cfg, nil); err != nil {
		t.Fatalf("nil ctx solve failed: %v", err)
	}
}
