package meterstate

import (
	"math"
	"testing"
)

func TestNewRowsShapeAndIndependence(t *testing.T) {
	rows := NewRows(3, 4)
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for i, r := range rows {
		if len(r) != 4 || cap(r) != 4 {
			t.Fatalf("row %d: len %d cap %d, want 4/4", i, len(r), cap(r))
		}
	}
	// Writes land only in their own row.
	rows[1][2] = 7
	for i, r := range rows {
		for h, v := range r {
			want := 0.0
			if i == 1 && h == 2 {
				want = 7
			}
			if v != want {
				t.Fatalf("rows[%d][%d] = %v, want %v", i, h, v, want)
			}
		}
	}
	// Full capacity slice expressions: appending to a row must not bleed
	// into the next row's storage.
	r0 := append(rows[0], 99)
	if rows[1][0] != 0 {
		t.Fatalf("append to row 0 corrupted row 1: %v", rows[1][0])
	}
	_ = r0
}

func TestNewRowsZeroSizes(t *testing.T) {
	if got := NewRows(0, 24); len(got) != 0 {
		t.Fatalf("NewRows(0,24) = %d rows", len(got))
	}
	rows := NewRows(2, 0)
	if len(rows) != 2 || len(rows[0]) != 0 {
		t.Fatalf("NewRows(2,0) shape wrong: %v", rows)
	}
}

func TestColumnsRoundTrip(t *testing.T) {
	const n, h = 5, 3
	rows := NewRows(n, h)
	for i := 0; i < n; i++ {
		for s := 0; s < h; s++ {
			rows[i][s] = float64(10*i + s)
		}
	}
	cols := NewColumns(n, h)
	cols.FillFromRows(rows)
	for i := 0; i < n; i++ {
		for s := 0; s < h; s++ {
			if got := cols.At(i, s); got != rows[i][s] {
				t.Fatalf("At(%d,%d) = %v, want %v", i, s, got, rows[i][s])
			}
		}
	}
	for s := 0; s < h; s++ {
		col := cols.Col(s)
		if len(col) != n {
			t.Fatalf("Col(%d) length %d, want %d", s, len(col), n)
		}
		for i, v := range col {
			if v != rows[i][s] {
				t.Fatalf("Col(%d)[%d] = %v, want %v", s, i, v, rows[i][s])
			}
		}
	}
}

// TestSumColMatchesRowWalk pins the bitwise contract: SumCol must reproduce
// the historical `for i { sum += rows[i][h] }` accumulation exactly, values
// chosen so that order matters if it were changed.
func TestSumColMatchesRowWalk(t *testing.T) {
	const n, h = 64, 24
	rows := NewRows(n, h)
	x := 0.1
	for i := 0; i < n; i++ {
		for s := 0; s < h; s++ {
			x = math.Mod(x*997.13+float64(i*s), 37.7) - 11.1
			rows[i][s] = x * math.Pow(10, float64((i+s)%7-3))
		}
	}
	cols := NewColumns(n, h)
	cols.FillFromRows(rows)
	for s := 0; s < h; s++ {
		want := 0.0
		for i := 0; i < n; i++ {
			want += rows[i][s]
		}
		if got := cols.SumCol(s); got != want {
			t.Fatalf("slot %d: SumCol = %v, row walk = %v (must be bitwise equal)", s, got, want)
		}
	}
}

func TestColumnsSetAndCol(t *testing.T) {
	cols := NewColumns(3, 2)
	cols.Set(2, 1, 5)
	if cols.At(2, 1) != 5 {
		t.Fatalf("At(2,1) = %v, want 5", cols.At(2, 1))
	}
	col := cols.Col(1)
	col[0] = -1 // aliasing contract: Col writes are visible
	if cols.At(0, 1) != -1 {
		t.Fatalf("Col aliasing broken: At(0,1) = %v", cols.At(0, 1))
	}
	if cols.N() != 3 || cols.H() != 2 {
		t.Fatalf("dims = %dx%d, want 3x2", cols.N(), cols.H())
	}
}

func TestPanicsOnBadShapes(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("NewRows negative", func() { NewRows(-1, 24) })
	mustPanic("NewColumns negative", func() { NewColumns(2, -1) })
	mustPanic("FillFromRows row count", func() {
		NewColumns(2, 2).FillFromRows(make([][]float64, 3))
	})
	mustPanic("FillFromRows short row", func() {
		NewColumns(1, 4).FillFromRows([][]float64{make([]float64, 2)})
	})
}
