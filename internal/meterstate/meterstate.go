// Package meterstate provides the columnar per-meter storage behind the
// engine's hot aggregation paths (community load, PAR, flagger inputs).
//
// The simulator's natural unit is the meter row — 24 hourly values per
// customer — but its hot loops are per-slot scans ACROSS meters: summing the
// community load at hour h, filling the flagger's measured column, folding
// realized readings into baselines. Row-of-pointers [][]float64 matrices put
// every row in its own allocation, so those scans chase N pointers into N
// cache lines per slot. This package offers two layouts:
//
//   - Rows: a [][]float64 view backed by ONE flat allocation, row-major.
//     Drop-in compatible with every existing consumer (imputer, flagger,
//     gob encoding, range loops) while collapsing N+1 allocations into 2 and
//     making consecutive rows contiguous.
//
//   - Columns: a slot-major matrix (all meters' values for slot h are
//     adjacent) for the per-slot reductions where the scan direction is
//     across meters.
//
// Neither layout changes a single value or summation order — callers iterate
// in the same index order they always did — so converting a call site is
// bitwise-neutral by construction (the engine's gob-byte identity tests
// enforce this).
package meterstate

import "fmt"

// NewRows returns an n×h matrix of float64 rows backed by a single flat
// allocation. Row i is flat[i*h : (i+1)*h]; consecutive rows are contiguous,
// so iterating rows in index order walks memory linearly. The returned rows
// behave exactly like independently allocated []float64 slices (append-free
// use assumed, as everywhere in the engine).
func NewRows(n, h int) [][]float64 {
	if n < 0 || h < 0 {
		panic(fmt.Sprintf("meterstate: negative dimensions %dx%d", n, h)) // lint:allow-panic — programmer-error contract, like make([]T, -1)
	}
	flat := make([]float64, n*h)
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = flat[i*h : (i+1)*h : (i+1)*h]
	}
	return rows
}

// Columns is a slot-major meter matrix: Col(h) is the length-n vector of all
// meters' values at slot h, stored contiguously. Use it where the hot scan
// runs across meters within one slot.
type Columns struct {
	n, h int
	data []float64 // data[h*n+i] = value of meter i at slot h
}

// NewColumns returns an empty slot-major matrix for n meters over h slots.
func NewColumns(n, h int) *Columns {
	if n < 0 || h < 0 {
		panic(fmt.Sprintf("meterstate: negative dimensions %dx%d", n, h)) // lint:allow-panic — programmer-error contract, like make([]T, -1)
	}
	return &Columns{n: n, h: h, data: make([]float64, n*h)}
}

// N returns the meter count.
func (c *Columns) N() int { return c.n }

// H returns the slot count.
func (c *Columns) H() int { return c.h }

// Col returns the contiguous per-meter vector for slot h. The slice aliases
// the matrix; writes through it are visible to every reader.
func (c *Columns) Col(h int) []float64 {
	return c.data[h*c.n : (h+1)*c.n : (h+1)*c.n]
}

// Set stores v for meter i at slot h.
func (c *Columns) Set(i, h int, v float64) { c.data[h*c.n+i] = v }

// At reads meter i's value at slot h.
func (c *Columns) At(i, h int) float64 { return c.data[h*c.n+i] }

// FillFromRows transposes a row-major matrix (rows[i][h]) into the slot-major
// layout. Row lengths must be at least c.H(); extra row entries are ignored.
func (c *Columns) FillFromRows(rows [][]float64) {
	if len(rows) != c.n {
		panic(fmt.Sprintf("meterstate: %d rows for %d meters", len(rows), c.n)) // lint:allow-panic — shape mismatch is a programmer error, like copy() misuse
	}
	for i, row := range rows {
		if len(row) < c.h {
			panic(fmt.Sprintf("meterstate: row %d has %d slots, want >= %d", i, len(row), c.h)) // lint:allow-panic — shape mismatch is a programmer error, like copy() misuse
		}
		for h := 0; h < c.h; h++ {
			c.data[h*c.n+i] = row[h]
		}
	}
}

// SumCol sums the per-meter vector of slot h in meter index order — the same
// order (and therefore the same floating-point result) as the historical
// row-walk `for i { sum += rows[i][h] }`.
func (c *Columns) SumCol(h int) float64 {
	col := c.Col(h)
	sum := 0.0
	for _, v := range col {
		sum += v
	}
	return sum
}
