// Pricing attack: mounts the paper's Figure-5 zero-price manipulation on a
// community and shows (a) how the scheduling game piles flexible load into
// the free window, inflating the peak-to-average ratio, and (b) the SVR
// single-event detector catching it through the PAR comparison of Section
// 4.1.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"nmdetect/internal/attack"
	"nmdetect/internal/billing"
	"nmdetect/internal/community"
	"nmdetect/internal/experiments"
	"nmdetect/internal/forecast"
	"nmdetect/internal/rng"
	"nmdetect/internal/tariff"
	"nmdetect/internal/timeseries"
)

func main() {
	const n = 40
	ctx := context.Background()

	cfg := community.DefaultConfig(n, 11)
	engine, err := community.NewEngine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// Build price history so the forecaster has something to train on.
	if err := engine.Bootstrap(ctx, 5, true); err != nil {
		log.Fatal(err)
	}
	fc, err := forecast.Train(engine.History(), forecast.ModeNetMeteringAware, forecast.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	env, err := engine.PrepareDay(ctx, true)
	if err != nil {
		log.Fatal(err)
	}

	// The hacker zeroes the price between 16:00 and 17:00 on every meter.
	atk := attack.ZeroWindow{From: 16, To: 17}
	camp, err := attack.NewCampaign(n, 0, 1, 1, atk)
	if err != nil {
		log.Fatal(err)
	}
	camp.HackNow(n, rng.New(1).Derive("attack"))

	kit := &community.DetectorKit{Name: "aware", NetMetering: true, Forecaster: fc, FlagTau: 0.5}
	predicted, err := kit.PredictPrice(engine, env)
	if err != nil {
		log.Fatal(err)
	}

	// Single-event detector: compare PAR under the predicted price against
	// PAR under the (manipulated) received price.
	se, err := engine.SingleEventKit(kit, env, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	manipulated := atk.Apply(env.Published)
	check, err := se.Check(ctx, predicted, manipulated)
	if err != nil {
		log.Fatal(err)
	}

	// Simulate the attacked day for the realized community load.
	trace, err := engine.SimulateDay(ctx, env, camp, true, nil)
	if err != nil {
		log.Fatal(err)
	}
	load := make(timeseries.Series, 24)
	for h, v := range trace.GridDemand {
		if v > 0 {
			load[h] = v
		}
	}

	fmt.Printf("attack: %s\n\n", atk.Name())
	if err := experiments.RenderChart(os.Stdout, "guideline price ($/unit)",
		[]string{"published", "manipulated"}, env.Published, manipulated); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := experiments.RenderChart(os.Stdout, "realized community grid demand (kW)",
		[]string{"attacked"}, load); err != nil {
		log.Fatal(err)
	}

	_, peak := load.Max()
	fmt.Printf("\nmalicious peak lands at %02d:00; attacked PAR = %.4f\n", peak, load.PAR())
	fmt.Printf("single-event detector: predicted PAR %.4f vs received PAR %.4f -> attack=%v\n",
		check.PredictedPAR, check.ReceivedPAR, check.Attack)
	if !check.Attack {
		fmt.Println("WARNING: attack was not detected — try a larger community or lower δ_P")
	}

	// Monetary damage: customers scheduled against the fake price but are
	// settled against the published one.
	q, err := tariff.NewQuadratic(1.5)
	if err != nil {
		log.Fatal(err)
	}
	attackedBill, err := billing.Settle(q, env.Published, trace.AttackedMeter)
	if err != nil {
		log.Fatal(err)
	}
	cleanBill, err := billing.Settle(q, env.Published, trace.CleanMeter)
	if err != nil {
		log.Fatal(err)
	}
	_, rel, err := billing.BillDelta(cleanBill, attackedBill)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("community bill damage: %+.1f%% (clean $%.2f -> attacked $%.2f); utility NM support cost $%.2f\n",
		100*rel, cleanBill.TotalBilled, attackedBill.TotalBilled, attackedBill.NMSupportCost)
}
