// Long-term detection: runs the two POMDP detector variants — net-metering-
// aware and NM-blind — side by side over a 48-hour attack campaign on
// identically seeded worlds, printing the per-slot belief evolution and the
// final accuracy/PAR/labor comparison of the paper's Figure 6 and Table 1.
package main

import (
	"context"
	"fmt"
	"log"

	"nmdetect/internal/community"
	"nmdetect/internal/core"
	"nmdetect/internal/detect"
)

func main() {
	const n = 60
	const days = 2
	ctx := context.Background()

	run := func(aware bool) ([]*community.MonitorDayResult, *core.System) {
		opts := core.DefaultOptions(n, 42)
		opts.BootstrapDays = 5
		opts.Solver = core.SolverPBVI
		sys, err := core.NewSystem(ctx, opts)
		if err != nil {
			log.Fatal(err)
		}
		kit := sys.Blind
		if aware {
			kit = sys.Aware
		}
		camp, err := sys.NewCampaign()
		if err != nil {
			log.Fatal(err)
		}
		results, err := sys.MonitorDays(ctx, kit, camp, days, true)
		if err != nil {
			log.Fatal(err)
		}
		return results, sys
	}

	fmt.Println("running the net-metering-aware detector...")
	awareRes, sys := run(true)
	fmt.Println("running the NM-blind baseline...")
	blindRes, _ := run(false)

	fmt.Printf("\nchannel calibration: aware fp=%.3f fn=%.3f | blind fp=%.3f fn=%.3f\n\n",
		sys.AwareFP, sys.AwareFN, sys.BlindFP, sys.BlindFN)

	fmt.Println("slot | aware: est belief true act | blind: est belief true act")
	slot := 0
	for d := 0; d < days; d++ {
		a, b := awareRes[d], blindRes[d]
		for h := 0; h < 24; h++ {
			fmt.Printf("%4d |        %3d %6d %4d %s |        %3d %6d %4d %s\n",
				slot,
				a.Estimated[h], a.BeliefBucket[h], a.TrueBucket[h], actionGlyph(a.Actions[h]),
				b.Estimated[h], b.BeliefBucket[h], b.TrueBucket[h], actionGlyph(b.Actions[h]))
			slot++
		}
	}

	fmt.Printf("\n%-22s %12s %10s %12s\n", "detector", "accuracy", "PAR", "inspections")
	fmt.Printf("%-22s %11.1f%% %10.4f %12d\n", "net-metering-aware",
		100*core.ObservationAccuracy(awareRes), core.RealizedPAR(awareRes), core.TotalInspections(awareRes))
	fmt.Printf("%-22s %11.1f%% %10.4f %12d\n", "nm-blind",
		100*core.ObservationAccuracy(blindRes), core.RealizedPAR(blindRes), core.TotalInspections(blindRes))
	fmt.Println("\n(paper, 500 homes: 95.14% vs 65.95% accuracy; PAR 1.4112 vs 1.5422)")
}

func actionGlyph(a int) string {
	if a == detect.ActionInspect {
		return "INSPECT"
	}
	return "·"
}
