// Net metering game: runs Algorithm 1 — the Net Metering Aware Energy
// Consumption Scheduling Game — on a small community and prints how the
// cross-entropy battery optimization and DP appliance scheduling interact:
// solar charges the battery midday, the battery discharges into the evening
// peak, and the community's grid demand flattens compared with the same
// community denied net metering.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"nmdetect/internal/experiments"
	"nmdetect/internal/game"
	"nmdetect/internal/household"
	"nmdetect/internal/rng"
	"nmdetect/internal/scenario"
	"nmdetect/internal/solar"
	"nmdetect/internal/timeseries"
)

func main() {
	const n = 30
	ctx := context.Background()
	src := rng.New(3)

	// The world knobs come from one declarative scenario spec; its
	// GameConfig lowering is what every detector and engine shares.
	spec := scenario.Default(n, 3)
	spec.Name = "net-metering-game"
	spec.Game.Sweeps = 5

	gen := household.DefaultGenerator()
	customers, err := gen.Generate(n, src.Derive("community"))
	if err != nil {
		log.Fatal(err)
	}
	pv, err := household.CommunityPVTraces(customers, solar.DefaultModel(), 1, src.Derive("solar"))
	if err != nil {
		log.Fatal(err)
	}

	// A utility price with a pronounced evening peak.
	price := make(timeseries.Series, 24)
	for h := range price {
		switch {
		case h >= 17 && h < 21:
			price[h] = 0.16
		case h >= 6 && h < 17:
			price[h] = 0.08
		default:
			price[h] = 0.05
		}
	}

	solve := func(netMetering bool) *game.Result {
		cfg := spec.GameConfig(netMetering)
		var pvIn [][]float64
		var gsrc *rng.Source
		if netMetering {
			pvIn = pv
			gsrc = rng.New(99)
		}
		res, err := game.Solve(ctx, customers, price, pvIn, cfg, gsrc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  net metering=%v: converged=%v after %d sweeps\n", netMetering, res.Converged, res.Sweeps)
		return res
	}

	fmt.Println("solving the energy consumption scheduling game:")
	plain := solve(false)
	nm := solve(true)

	nmDemand := make(timeseries.Series, 24)
	for h, v := range nm.GridDemand {
		if v > 0 {
			nmDemand[h] = v
		}
	}

	fmt.Println()
	if err := experiments.RenderChart(os.Stdout, "community grid demand (kW)",
		[]string{"without net metering", "with net metering"}, plain.GridDemand, nmDemand); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nPAR without net metering: %.4f\n", plain.GridDemand.PAR())
	fmt.Printf("PAR with net metering:    %.4f\n", nmDemand.PAR())

	// Show one battery household's solved trajectory.
	for i, c := range customers {
		if nm.BatteryTraj[i] == nil {
			continue
		}
		fmt.Printf("\ncustomer %d (PV %.1f kW, battery %.1f kWh) storage trajectory (kWh):\n",
			c.ID, c.Panel.CapacityKW, c.Battery.Capacity)
		for h := 0; h <= 24; h += 4 {
			fmt.Printf("  %02d:00 %6.2f\n", h%24, nm.BatteryTraj[i][h])
		}
		break
	}

	totalCostPlain, totalCostNM := 0.0, 0.0
	for i := range customers {
		totalCostPlain += plain.Cost[i]
		totalCostNM += nm.Cost[i]
	}
	fmt.Printf("\ntotal community cost: %.2f without NM, %.2f with NM (%.1f%% saved)\n",
		totalCostPlain, totalCostNM, 100*(totalCostPlain-totalCostNM)/totalCostPlain)
}
