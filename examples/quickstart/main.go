// Quickstart: build a small smart-home community, launch a pricing
// cyberattack campaign, and run the net-metering-aware detection pipeline
// end to end — the shortest path through the library's public surface.
package main

import (
	"context"
	"fmt"
	"log"

	"nmdetect/internal/core"
	"nmdetect/internal/detect"
	"nmdetect/internal/scenario"
)

func main() {
	ctx := context.Background()

	// 1. Describe the run as a scenario: a 40-home community, seed 7, a
	//    shorter bootstrap and the fast approximate QMDP policy for the
	//    demo. The spec is plain data — Save it as JSON and any front end
	//    (nmrepro/nmsim/nmdetect -scenario) reruns it bit for bit.
	spec := scenario.Default(40, 7)
	spec.Name = "quickstart"
	spec.Horizon.BootstrapDays = 5
	spec.Detector.Solver = "qmdp"
	fmt.Printf("scenario %s (%s)\n", spec.Name, spec.ID())

	// 2. Lower the spec into the full pipeline: synthetic households with
	//    PV and batteries, a utility pricing process, SVR price
	//    forecasters, calibrated observation channels and a solved POMDP
	//    policy. Everything is seeded — rerunning reproduces this output
	//    exactly.
	opts, err := spec.CoreOptions()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("building pipeline (community, forecasters, POMDP)...")
	sys, err := core.NewSystem(ctx, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calibrated channels: aware fp=%.3f fn=%.3f | blind fp=%.3f fn=%.3f\n",
		sys.AwareFP, sys.AwareFN, sys.BlindFP, sys.BlindFN)

	// 3. Launch the attack campaign: a hacker gradually compromises smart
	//    meters and zeroes the guideline price they see at 16:00-17:00,
	//    luring their schedulable loads into a malicious peak.
	camp, err := sys.NewCampaign()
	if err != nil {
		log.Fatal(err)
	}

	// 4. Monitor two days (48 slots) with the net-metering-aware detector.
	//    Inspect actions repair the fleet.
	results, err := sys.MonitorDays(ctx, sys.Aware, camp, spec.Horizon.MonitorDays, true)
	if err != nil {
		log.Fatal(err)
	}

	// 5. Report what happened.
	inspections := core.TotalInspections(results)
	fmt.Printf("\nmonitored %d slots: observation accuracy %.1f%%, realized PAR %.4f, %d inspections\n",
		len(results)*24, 100*core.ObservationAccuracy(results), core.RealizedPAR(results), inspections)

	for d, day := range results {
		for h := 0; h < 24; h++ {
			if day.Actions[h] == detect.ActionInspect {
				fmt.Printf("  day %d %02d:00 — INSPECT (est. %d meters hacked, truly %d)\n",
					d+1, h, day.Estimated[h], day.Trace.TrueHacked[h])
			}
		}
	}
}
