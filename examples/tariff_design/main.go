// Tariff design: sweeps the net-metering sell-back divisor W (Section 2.3 —
// sellers are paid pₕ/W per marginal unit) and shows its effect on community
// economics and load shape. W=1 is full retail net metering; raising W is
// how utilities throttle the program. The sweep quantifies the trade-off the
// paper's Eqn 2 encodes: stingier sell-back means higher customer cost and a
// weaker midday consumption shift.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"nmdetect/internal/experiments"
	"nmdetect/internal/scenario"
)

func main() {
	// One declarative scenario describes the community; the sell-back
	// divisor W is then swept over it.
	spec := scenario.Default(40, 5)
	spec.Name = "tariff-design"
	spec.Horizon.BootstrapDays = 4
	spec.Horizon.MonitorDays = 1
	spec.Detector.Solver = "qmdp"
	cfg := spec.ExperimentsConfig()

	ws := []float64{1, 1.25, 1.5, 2, 3, 5, 10}
	fmt.Printf("sweeping sell-back divisor W over %v on a %d-home community...\n\n", ws, cfg.N)

	rows, err := experiments.AblationSellBack(context.Background(), cfg, ws)
	if err != nil {
		log.Fatal(err)
	}
	experiments.RenderSellBackAblation(os.Stdout, rows)

	// Summarize the policy trade-off.
	first, last := rows[0], rows[len(rows)-1]
	fmt.Printf("\nfrom W=%.0f to W=%.0f:\n", first.W, last.W)
	fmt.Printf("  community cost:   %+.1f%%\n", 100*(last.TotalCost-first.TotalCost)/first.TotalCost)
	fmt.Printf("  grid energy:      %+.1f%%\n", 100*(last.GridEnergyNet-first.GridEnergyNet)/first.GridEnergyNet)
	fmt.Printf("  consumption PAR:  %+.2f%%\n", 100*(last.LoadPAR-first.LoadPAR)/first.LoadPAR)
	fmt.Println("\nfull retail net metering (W=1) maximizes the incentive to shift")
	fmt.Println("consumption into solar hours; the paper's experiments use W=1.5.")
}
