// Policy cache: demonstrates separating the expensive offline phase from
// online monitoring. The detection POMDP is calibrated and solved once, the
// policy is serialized to JSON, and a "fresh deployment" reloads it and
// monitors without re-solving — the workflow a production rollout would use
// for a fleet of identical neighborhoods.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"nmdetect/internal/detect"
	"nmdetect/internal/pomdp"
)

func main() {
	const meters = 200

	// --- Offline phase: calibrate the model, solve the policy. ---
	params := detect.DefaultModelParams(meters, 0.01, 0.35)
	fmt.Printf("calibrating detection POMDP for %d meters (%d states)...\n",
		meters, params.Buckets.NumBuckets())
	model, err := detect.BuildModel(params)
	if err != nil {
		log.Fatal(err)
	}
	policy, err := pomdp.SolvePBVI(context.Background(), model, pomdp.DefaultPBVIOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solved: %d alpha vectors\n", policy.NumAlphaVectors())

	// Serialize (to a buffer here; a deployment would write a file).
	var blob bytes.Buffer
	if err := policy.Save(&blob); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serialized policy: %d bytes of JSON\n", blob.Len())

	// --- Online phase: a fresh process loads the policy and monitors. ---
	loaded, err := pomdp.LoadPolicy(&blob, model.NumStates)
	if err != nil {
		log.Fatal(err)
	}
	monitor, err := detect.NewLongTerm(model, loaded, params.Buckets)
	if err != nil {
		log.Fatal(err)
	}

	// Feed a synthetic estimated-hacked-count stream: quiet, then a growing
	// intrusion, then quiet again after the repair.
	stream := []int{0, 0, 0, 1, 0, 4, 9, 15, 28, 41, 55, 0, 0, 0}
	fmt.Println("\nslot  est-hacked  belief-bucket  action")
	for slot, est := range stream {
		action, _ := monitor.Step(est)
		glyph := "continue"
		if action == detect.ActionInspect {
			glyph = "INSPECT"
		}
		fmt.Printf("%4d  %10d  %13d  %s\n", slot, est, monitor.MAPBucket(), glyph)
	}
	fmt.Printf("\n%d inspections over %d slots\n", monitor.Inspections, monitor.Steps)

	// Sanity: the loaded policy behaves identically to the original.
	for s := 0; s < model.NumStates; s++ {
		b := pomdp.PointBelief(model.NumStates, s)
		if loaded.Action(b) != policy.Action(b) {
			log.Fatalf("loaded policy diverges at state %d", s)
		}
	}
	fmt.Println("loaded policy matches the original on every corner belief")
}
