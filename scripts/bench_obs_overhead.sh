#!/bin/sh
# bench_obs_overhead.sh — observability overhead guard.
#
# Runs BenchmarkGameSolveParallel4 (events off) and
# BenchmarkGameSolveParallel4Events (live sink on the context) several times,
# takes the minimum ns/op of each (minimum, not mean: the best observed run
# is the least noisy estimate on a shared machine), and fails if events-on
# costs more than OBS_OVERHEAD_MAX (fraction, default 0.05 = 5%).
#
# Writes BENCH_obs_overhead.json next to the repo root:
#   {"base_ns": ..., "events_ns": ..., "overhead_frac": ..., "max_frac": ..., "pass": true}
#
# Usage: scripts/bench_obs_overhead.sh [output.json]
set -eu
cd "$(dirname "$0")/.."

out="${1:-BENCH_obs_overhead.json}"
max_frac="${OBS_OVERHEAD_MAX:-0.05}"
count="${OBS_BENCH_COUNT:-3}"
benchtime="${OBS_BENCH_TIME:-1x}"

raw=$(go test -run '^$' -bench 'BenchmarkGameSolveParallel4(Events)?$' \
	-benchtime "$benchtime" -count "$count" .)
echo "$raw"

min_ns() {
	# Minimum ns/op over the repeated runs of one benchmark.
	echo "$raw" | awk -v name="$1" '
		$1 ~ "^"name"-" || $1 == name {
			for (i = 2; i <= NF; i++) if ($(i+1) == "ns/op") v = $i
			if (min == "" || v + 0 < min + 0) min = v
		}
		END { if (min == "") { exit 1 }; print min }'
}

base=$(min_ns BenchmarkGameSolveParallel4) || { echo "obs-overhead: base benchmark missing" >&2; exit 1; }
events=$(min_ns BenchmarkGameSolveParallel4Events) || { echo "obs-overhead: events benchmark missing" >&2; exit 1; }
envinfo=$(go run scripts/envinfo.go)

python3 - "$base" "$events" "$max_frac" "$out" "$envinfo" <<'EOF'
import json, sys
base, events, max_frac = float(sys.argv[1]), float(sys.argv[2]), float(sys.argv[3])
overhead = events / base - 1.0
result = {
    "benchmark": "BenchmarkGameSolveParallel4",
    "base_ns": base,
    "events_ns": events,
    "overhead_frac": round(overhead, 4),
    "max_frac": max_frac,
    "pass": overhead <= max_frac,
}
# Label the numbers with the environment they were measured under
# (go version, GOMAXPROCS, NumCPU) so artifacts from different runners
# are never compared blind.
result.update(json.loads(sys.argv[5]))
with open(sys.argv[4], "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")
print(f"obs-overhead: base {base:.0f} ns/op, events {events:.0f} ns/op, "
      f"overhead {overhead*100:+.2f}% (budget {max_frac*100:.0f}%)")
sys.exit(0 if result["pass"] else 1)
EOF
