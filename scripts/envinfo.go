//go:build ignore

// Command envinfo prints the execution-environment labels every recorded
// BENCH_*.json artifact carries, as one JSON object on stdout:
//
//	{"go":"go1.24.0","goos":"linux","goarch":"amd64","gomaxprocs":1,"num_cpu":1}
//
// Shell harnesses (scripts/bench_obs_overhead.sh) merge this into their
// output so benchmark numbers are never divorced from the parallelism they
// were measured under. Run with: go run scripts/envinfo.go
package main

import (
	"encoding/json"
	"os"
	"runtime"
)

func main() {
	json.NewEncoder(os.Stdout).Encode(map[string]any{
		"go":         runtime.Version(),
		"goos":       runtime.GOOS,
		"goarch":     runtime.GOARCH,
		"gomaxprocs": runtime.GOMAXPROCS(0),
		"num_cpu":    runtime.NumCPU(),
	})
}
