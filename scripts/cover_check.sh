#!/bin/sh
# cover_check.sh — statement-coverage floor for the hot-path solver packages.
# The workspace/active-set refactor (DESIGN.md §10) leans on its test layer —
# the dpsched property suite, the game identity/invariance tests, the ceopt
# workspace tests and the fleet determinism suite (§12) — so this gate fails
# the build if any of those packages
# drops below the floor, before a coverage regression can silently erode the
# bitwise-identity contract.
#
# Run from the repository root: scripts/cover_check.sh
set -eu

FLOOR=${COVER_FLOOR:-70}
PKGS="internal/dpsched internal/game internal/ceopt internal/meterstate internal/fleet internal/supervise internal/serve internal/attack"
PROFILE=${COVER_PROFILE:-coverage.out}

fail=0
for pkg in $PKGS; do
    go test -coverprofile "$PROFILE" "./$pkg" >/dev/null
    pct=$(go tool cover -func "$PROFILE" | awk '/^total:/ {sub(/%/, "", $3); print $3}')
    ok=$(awk -v p="$pct" -v f="$FLOOR" 'BEGIN {print (p >= f) ? 1 : 0}')
    if [ "$ok" -eq 1 ]; then
        echo "cover_check: $pkg ${pct}% (floor ${FLOOR}%)"
    else
        echo "cover_check: $pkg ${pct}% is below the ${FLOOR}% floor" >&2
        fail=1
    fi
done
rm -f "$PROFILE"

exit $fail
