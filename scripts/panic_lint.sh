#!/bin/sh
# panic_lint.sh — fail when non-test library code under internal/ gains a
# panic. The repository's error contract (DESIGN.md "Scenario spec &
# cancellation contract") is that library packages return errors; panics are
# reserved for:
#
#   - the low-level kernel packages internal/mat, internal/rng,
#     internal/timeseries and internal/svr, whose documented contract is
#     panic-on-programmer-error (like the standard library's slice ops);
#   - individual lines carrying a `lint:allow-panic` marker with a
#     justification (e.g. metrics.Must, scenario.Spec.ID), which the reviewer
#     reads as "provably unreachable or an explicitly documented Must helper".
#
# Run from the repository root: scripts/panic_lint.sh
set -u

allow_pkgs='^internal/(mat|rng|timeseries|svr)/'

offenders=$(
    grep -rn 'panic(' internal/ --include='*.go' |
        grep -v '_test\.go:' |
        grep -Ev "$allow_pkgs" |
        grep -v 'lint:allow-panic'
)

if [ -n "$offenders" ]; then
    echo "panic_lint: new panic in library code (return an error instead," >&2
    echo "panic_lint: or add a justified 'lint:allow-panic' marker):" >&2
    echo "$offenders" >&2
    exit 1
fi
echo "panic_lint: ok"
