module nmdetect

go 1.22
