// Package bench is the benchmark harness: one benchmark per table and figure
// of the paper's evaluation (regenerating the result each iteration at a
// reduced community scale) plus ablation benchmarks for the design choices
// DESIGN.md calls out: the POMDP policy solver, the SVR trainer, the battery
// optimizer and the scheduling game.
//
// Run with:
//
//	go test -bench=. -benchmem
//
// Paper-scale regeneration (N=500) is the job of cmd/nmrepro; benchmarks use
// small communities so the full suite completes in minutes.
package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"nmdetect/internal/appliance"
	"nmdetect/internal/attack"
	"nmdetect/internal/ceopt"
	"nmdetect/internal/community"
	"nmdetect/internal/core"
	"nmdetect/internal/detect"
	"nmdetect/internal/dpsched"
	"nmdetect/internal/experiments"
	"nmdetect/internal/fleet"
	"nmdetect/internal/forecast"
	"nmdetect/internal/game"
	"nmdetect/internal/household"
	"nmdetect/internal/obs"
	"nmdetect/internal/pomdp"
	"nmdetect/internal/rng"
	"nmdetect/internal/scenario"
	"nmdetect/internal/solar"
	"nmdetect/internal/svr"
	"nmdetect/internal/tariff"
	"nmdetect/internal/timeseries"
)

// benchConfig returns the reduced-scale experiment configuration used by the
// per-figure benchmarks.
func benchConfig() experiments.Config {
	return experiments.Config{
		N:             24,
		Seed:          42,
		BootstrapDays: 5,
		GameSweeps:    2,
		MonitorDays:   1,
		Solver:        core.SolverQMDP,
	}
}

// --- Figure/Table regeneration benchmarks -------------------------------

func BenchmarkFig3PriceOnlyPrediction(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4NetMeteringPrediction(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5Attack(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6ObservationAccuracy(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1DetectionComparison(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Substrate benchmarks ------------------------------------------------

func benchCommunity(b *testing.B, n int) ([]*household.Customer, [][]float64) {
	b.Helper()
	gen := household.DefaultGenerator()
	customers, err := gen.Generate(n, rng.New(42))
	if err != nil {
		b.Fatal(err)
	}
	pv, err := household.CommunityPVTraces(customers, solar.DefaultModel(), 1, rng.New(43))
	if err != nil {
		b.Fatal(err)
	}
	return customers, pv
}

func benchPrice() timeseries.Series {
	p := make(timeseries.Series, 24)
	for h := range p {
		p[h] = 0.06 + 0.05*math.Sin(float64(h)/24*2*math.Pi)
		if p[h] < 0.02 {
			p[h] = 0.02
		}
	}
	return p
}

// BenchmarkGameSolveNetMetering measures one Algorithm-1 solve (DP + CE per
// customer, Gauss-Seidel sweeps) for a 50-home community.
func BenchmarkGameSolveNetMetering(b *testing.B) {
	customers, pv := benchCommunity(b, 50)
	q, _ := tariff.NewQuadratic(1.5)
	cfg := game.DefaultConfig(q, true)
	cfg.MaxSweeps = 2
	price := benchPrice()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := game.Solve(context.Background(), customers, price, pv, cfg, rng.New(7)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGameSolveBaseline is the [9]-style no-net-metering ablation: the
// cost of the community model the NM-blind detector reasons with.
func BenchmarkGameSolveBaseline(b *testing.B) {
	customers, _ := benchCommunity(b, 50)
	q, _ := tariff.NewQuadratic(1.5)
	cfg := game.DefaultConfig(q, false)
	cfg.MaxSweeps = 2
	price := benchPrice()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := game.Solve(context.Background(), customers, price, nil, cfg, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// benchmarkGameSolveParallel measures the block-Jacobi solve of a
// 24-customer net-metering community (JacobiBlock 8) at a given worker
// count. Workers is a pure execution knob, so the three variants below solve
// the exact same game to the same bits — the ratio of their wall-clock times
// is the parallel speedup of the hot path (record baselines in
// BENCH_game_parallel.json; a ≥ 2.5× Parallel1/Parallel8 ratio is expected
// on ≥ 8 free cores).
func benchmarkGameSolveParallel(b *testing.B, workers int) {
	customers, pv := benchCommunity(b, 24)
	q, _ := tariff.NewQuadratic(1.5)
	cfg := game.DefaultConfig(q, true)
	cfg.MaxSweeps = 2
	cfg.JacobiBlock = 8
	cfg.Workers = workers
	price := benchPrice()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := game.Solve(context.Background(), customers, price, pv, cfg, rng.New(7)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGameSolveParallel1(b *testing.B) { benchmarkGameSolveParallel(b, 1) }
func BenchmarkGameSolveParallel4(b *testing.B) { benchmarkGameSolveParallel(b, 4) }
func BenchmarkGameSolveParallel8(b *testing.B) { benchmarkGameSolveParallel(b, 8) }

// BenchmarkGameSolveWorkspace is the workspace counterpart of Parallel1: the
// exact same 24-customer block-Jacobi solve, but through game.SolveWS with a
// workspace reused across iterations — the engine's steady-state shape. The
// contract (enforced by TestSolveWSActiveTolZeroIdentity) is bitwise-identical
// results; the payoff measured here is allocations. Record alongside the
// Parallel baselines in BENCH_hotpath.json; a ≥ 5× allocs/op reduction vs
// Parallel1 is the expected steady state.
func BenchmarkGameSolveWorkspace(b *testing.B) {
	customers, pv := benchCommunity(b, 24)
	q, _ := tariff.NewQuadratic(1.5)
	cfg := game.DefaultConfig(q, true)
	cfg.MaxSweeps = 2
	cfg.JacobiBlock = 8
	cfg.Workers = 1
	price := benchPrice()
	ws := game.NewWorkspace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := game.SolveWS(context.Background(), ws, customers, price, pv, cfg, rng.New(7)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchmarkGameSolveActiveSet measures the residual-gated sweep on the
// deterministic no-net-metering model (the regime where customers actually go
// stationary — see DESIGN.md §10) with a generous sweep budget, gated vs
// ungated. The off variant is the honest baseline: identical config except
// ActiveTol=0.
func benchmarkGameSolveActiveSet(b *testing.B, tol float64) {
	customers, _ := benchCommunity(b, 24)
	q, _ := tariff.NewQuadratic(1.5)
	cfg := game.DefaultConfig(q, false)
	cfg.MaxSweeps = 4
	cfg.Tol = 1e-12
	cfg.ActiveTol = tol
	price := benchPrice()
	ws := game.NewWorkspace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := game.SolveWS(context.Background(), ws, customers, price, nil, cfg, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGameSolveActiveSet(b *testing.B)    { benchmarkGameSolveActiveSet(b, 0.05) }
func BenchmarkGameSolveActiveSetOff(b *testing.B) { benchmarkGameSolveActiveSet(b, 0) }

// --- Paper-scale curve (BENCH_scale.json) --------------------------------

// scaleShards returns the shard count the scale curve runs an n-customer
// community with: near-64-customer shards, so 500 customers land on the same
// 8 shards as the scale500 preset and 24 customers stay on the flat solver
// (shards <= 1 is the reference semantics — the curve's small-N anchor is
// exactly today's path).
func scaleShards(n int) int { return (n + 63) / 64 }

// benchmarkScaleSolve is one point of the customers-vs-ns/op curve: a full
// Algorithm-1 solve (MaxSweeps 2, net metering on) of an n-customer
// community through the hierarchical solver with scaleShards(n) shards and a
// reused workspace — the steady-state shape of the sharded engine's day loop.
func benchmarkScaleSolve(b *testing.B, n int) {
	customers, pv := benchCommunity(b, n)
	q, _ := tariff.NewQuadratic(1.5)
	cfg := game.DefaultConfig(q, true)
	cfg.MaxSweeps = 2
	cfg.Shards = scaleShards(n)
	price := benchPrice()
	ws := game.NewWorkspace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := game.SolveWS(context.Background(), ws, customers, price, pv, cfg, rng.New(7)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScaleSolve24(b *testing.B)  { benchmarkScaleSolve(b, 24) }
func BenchmarkScaleSolve100(b *testing.B) { benchmarkScaleSolve(b, 100) }
func BenchmarkScaleSolve500(b *testing.B) { benchmarkScaleSolve(b, 500) }

var (
	benchScaleOut = flag.String("bench-scale-out", "",
		"write the customers-vs-ns/op curve to this JSON path (empty = skip TestWriteBenchScale)")
	benchScaleSizes = flag.String("bench-scale-sizes", "24,100,500",
		"comma-separated community sizes for the scale curve")
)

// TestWriteBenchScale runs the scale curve at the sizes given by
// -bench-scale-sizes and writes BENCH_scale.json-shaped output to
// -bench-scale-out, labelled with the execution environment (Go version,
// GOMAXPROCS, NumCPU). It fails if the curve is not strictly monotone in N
// or if ns/op grows quadratically or worse from the first point to the last
// — the sub-quadratic claim the hierarchical solver exists to make good on.
// `make bench-scale` records the paper curve; `make bench-scale-smoke` runs
// tiny sizes as a CI guard. Skipped unless -bench-scale-out is set.
func TestWriteBenchScale(t *testing.T) {
	if *benchScaleOut == "" {
		t.Skip("set -bench-scale-out to record the scale curve")
	}
	var sizes []int
	for _, f := range strings.Split(*benchScaleSizes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 4 {
			t.Fatalf("bad -bench-scale-sizes entry %q", f)
		}
		sizes = append(sizes, n)
	}

	type point struct {
		N         int     `json:"n"`
		Shards    int     `json:"shards"`
		NsPerOp   float64 `json:"ns_per_op"`
		BytesOp   int64   `json:"bytes_per_op"`
		AllocsOp  int64   `json:"allocs_per_op"`
		NsPerCust float64 `json:"ns_per_customer"`
	}
	var curve []point
	for _, n := range sizes {
		n := n
		r := testing.Benchmark(func(b *testing.B) { benchmarkScaleSolve(b, n) })
		p := point{
			N:         n,
			Shards:    scaleShards(n),
			NsPerOp:   float64(r.NsPerOp()),
			BytesOp:   r.AllocedBytesPerOp(),
			AllocsOp:  r.AllocsPerOp(),
			NsPerCust: float64(r.NsPerOp()) / float64(n),
		}
		curve = append(curve, p)
		t.Logf("N=%d shards=%d: %.0f ns/op (%.0f ns/customer)", p.N, p.Shards, p.NsPerOp, p.NsPerCust)
	}

	// Monotone in N, with a 5% margin: at small sizes a point can sit within
	// scheduler noise of its neighbour, and the claim being guarded is shape,
	// not per-point precision.
	for i := 1; i < len(curve); i++ {
		if curve[i].NsPerOp <= curve[i-1].NsPerOp*0.95 {
			t.Errorf("curve not monotone: N=%d at %.0f ns/op <= N=%d at %.0f ns/op",
				curve[i].N, curve[i].NsPerOp, curve[i-1].N, curve[i-1].NsPerOp)
		}
	}
	var growth float64
	if len(curve) >= 2 {
		first, last := curve[0], curve[len(curve)-1]
		nRatio := float64(last.N) / float64(first.N)
		growth = last.NsPerOp / first.NsPerOp
		if growth >= nRatio*nRatio {
			t.Errorf("ns/op growth %.1fx over a %.1fx size increase is quadratic or worse", growth, nRatio)
		}
	}

	out := map[string]any{
		"description": "Customers-vs-ns/op curve for the hierarchical (sharded) game solve: " +
			"one MaxSweeps-2 net-metering solve per op, shards ~= N/64 (500 customers = the " +
			"scale500 preset's 8 shards). Regenerate with `make bench-scale`.",
		"go":          runtime.Version(),
		"goos":        runtime.GOOS,
		"goarch":      runtime.GOARCH,
		"gomaxprocs":  runtime.GOMAXPROCS(0),
		"num_cpu":     runtime.NumCPU(),
		"curve":       curve,
		"growth_frac": growth,
	}
	f, err := os.Create(*benchScaleOut)
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("bench-scale: wrote %d points to %s\n", len(curve), *benchScaleOut)
}

// --- Fleet curve (BENCH_fleet.json) --------------------------------------

var (
	benchFleetOut = flag.String("bench-fleet-out", "",
		"write the total-meters-vs-ns/op fleet curve to this JSON path (empty = skip TestWriteBenchFleet)")
	benchFleetShapes = flag.String("bench-fleet-shapes", "2x500,8x500,20x500",
		"comma-separated FxN fleet shapes (F communities of N meters) for the fleet curve")
)

// benchFleetEngines builds one engine per community for an FxN fleet point:
// fleet-derived seeds, the sharded solver at scaleShards(n), MaxSweeps 2 —
// the same per-community configuration the scale curve runs flat.
func benchFleetEngines(tb testing.TB, f, n int) []*community.Engine {
	tb.Helper()
	engines := make([]*community.Engine, f)
	for i := range engines {
		cfg := community.DefaultConfig(n, fleet.CommunitySeed(42, i))
		cfg.GameSweeps = 2
		cfg.Shards = scaleShards(n)
		eng, err := community.NewEngine(cfg)
		if err != nil {
			tb.Fatal(err)
		}
		engines[i] = eng
	}
	return engines
}

// benchmarkFleetSimDay is one point of the fleet curve: one shared fleet
// tick (fleet.SimDay — every community prepares and simulates one
// net-metering day) over F communities of n meters. Engines are built
// outside the timer; the op is the steady-state day loop.
func benchmarkFleetSimDay(b *testing.B, f, n int) {
	engines := benchFleetEngines(b, f, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fleet.SimDay(context.Background(), 0, engines, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFleetSimDay2x100(b *testing.B) { benchmarkFleetSimDay(b, 2, 100) }
func BenchmarkFleetSimDay4x100(b *testing.B) { benchmarkFleetSimDay(b, 4, 100) }

// TestWriteBenchFleet runs the fleet day loop at the shapes given by
// -bench-fleet-shapes (FxN = F communities of N meters) and writes
// BENCH_fleet.json-shaped output to -bench-fleet-out, labelled with the
// execution environment. It fails if ns/op is not monotone in total meters
// or grows quadratically or worse from the first shape to the last — the
// fleet exists precisely so total meters scale by adding communities, each
// solved at its own bounded size. `make bench-fleet` records the paper curve
// (the last shape is 10k meters); `make bench-fleet-smoke` runs tiny shapes
// as a CI guard. Skipped unless -bench-fleet-out is set.
func TestWriteBenchFleet(t *testing.T) {
	if *benchFleetOut == "" {
		t.Skip("set -bench-fleet-out to record the fleet curve")
	}
	type shape struct{ f, n int }
	var shapes []shape
	for _, entry := range strings.Split(*benchFleetShapes, ",") {
		parts := strings.SplitN(strings.TrimSpace(entry), "x", 2)
		if len(parts) != 2 {
			t.Fatalf("bad -bench-fleet-shapes entry %q (want FxN)", entry)
		}
		f, err1 := strconv.Atoi(parts[0])
		n, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil || f < 1 || n < 4 {
			t.Fatalf("bad -bench-fleet-shapes entry %q (want FxN)", entry)
		}
		shapes = append(shapes, shape{f, n})
	}

	type point struct {
		Communities int     `json:"communities"`
		Size        int     `json:"size"`
		TotalMeters int     `json:"total_meters"`
		Shards      int     `json:"shards"`
		NsPerOp     float64 `json:"ns_per_op"`
		BytesOp     int64   `json:"bytes_per_op"`
		AllocsOp    int64   `json:"allocs_per_op"`
		NsPerMeter  float64 `json:"ns_per_meter"`
	}
	var curve []point
	for _, s := range shapes {
		s := s
		r := testing.Benchmark(func(b *testing.B) { benchmarkFleetSimDay(b, s.f, s.n) })
		p := point{
			Communities: s.f,
			Size:        s.n,
			TotalMeters: s.f * s.n,
			Shards:      scaleShards(s.n),
			NsPerOp:     float64(r.NsPerOp()),
			BytesOp:     r.AllocedBytesPerOp(),
			AllocsOp:    r.AllocsPerOp(),
			NsPerMeter:  float64(r.NsPerOp()) / float64(s.f*s.n),
		}
		curve = append(curve, p)
		t.Logf("%dx%d (%d meters): %.0f ns/op (%.0f ns/meter)",
			p.Communities, p.Size, p.TotalMeters, p.NsPerOp, p.NsPerMeter)
	}

	// Same shape guards as the scale curve: monotone in total meters with a
	// 5% noise margin, and sub-quadratic end to end.
	for i := 1; i < len(curve); i++ {
		if curve[i].TotalMeters <= curve[i-1].TotalMeters {
			t.Fatalf("-bench-fleet-shapes must grow in total meters: %d then %d",
				curve[i-1].TotalMeters, curve[i].TotalMeters)
		}
		if curve[i].NsPerOp <= curve[i-1].NsPerOp*0.95 {
			t.Errorf("curve not monotone: %d meters at %.0f ns/op <= %d meters at %.0f ns/op",
				curve[i].TotalMeters, curve[i].NsPerOp, curve[i-1].TotalMeters, curve[i-1].NsPerOp)
		}
	}
	var growth float64
	if len(curve) >= 2 {
		first, last := curve[0], curve[len(curve)-1]
		mRatio := float64(last.TotalMeters) / float64(first.TotalMeters)
		growth = last.NsPerOp / first.NsPerOp
		if growth >= mRatio*mRatio {
			t.Errorf("ns/op growth %.1fx over a %.1fx meter increase is quadratic or worse", growth, mRatio)
		}
	}

	out := map[string]any{
		"description": "Total-meters-vs-ns/op curve for the fleet day loop: one fleet.SimDay " +
			"tick per op over F communities of N meters each (fleet-derived seeds, MaxSweeps-2 " +
			"net-metering days, shards ~= N/64 per community). Regenerate with `make bench-fleet`.",
		"go":          runtime.Version(),
		"goos":        runtime.GOOS,
		"goarch":      runtime.GOARCH,
		"gomaxprocs":  runtime.GOMAXPROCS(0),
		"num_cpu":     runtime.NumCPU(),
		"curve":       curve,
		"growth_frac": growth,
	}
	f, err := os.Create(*benchFleetOut)
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("bench-fleet: wrote %d points to %s\n", len(curve), *benchFleetOut)
}

// BenchmarkGameSolveParallel4Events is the observability overhead guard: the
// same solve as Parallel4, but with a live event sink attached to the
// context (writing to io.Discard, so the cost measured is instrumentation,
// not disk). scripts/bench_obs_overhead.sh compares it against Parallel4 and
// fails the build if events-on costs more than the DESIGN.md §9 budget (5%).
func BenchmarkGameSolveParallel4Events(b *testing.B) {
	customers, pv := benchCommunity(b, 24)
	q, _ := tariff.NewQuadratic(1.5)
	cfg := game.DefaultConfig(q, true)
	cfg.MaxSweeps = 2
	cfg.JacobiBlock = 8
	cfg.Workers = 4
	price := benchPrice()
	sink := obs.NewSink(io.Discard)
	defer sink.Close()
	ctx := obs.With(context.Background(), sink)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := game.Solve(ctx, customers, price, pv, cfg, rng.New(7)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnginePrepareDay measures the parallel per-customer PV generation
// path of the engine's day preparation.
func BenchmarkEnginePrepareDay(b *testing.B) {
	cfg := community.DefaultConfig(100, 42)
	engine, err := community.NewEngine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.PrepareDay(context.Background(), true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDPScheduler measures the per-appliance dynamic program.
func BenchmarkDPScheduler(b *testing.B) {
	a := &appliance.Appliance{
		Name: "ev", Levels: []float64{1.5, 3.0, 6.0}, Energy: 12, Start: 17, Deadline: 23,
	}
	price := benchPrice()
	cost := func(h int, x float64) float64 { return price[h] * x }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := dpsched.Schedule(a, 24, cost); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDPSchedulerContiguous measures the non-preemptible scheduling
// extension (enumerate start × level instead of the energy-lattice DP).
func BenchmarkDPSchedulerContiguous(b *testing.B) {
	a := &appliance.Appliance{
		Name: "washer", Levels: []float64{0.5, 1.0, 2.0}, Energy: 2,
		Start: 6, Deadline: 22, Contiguous: true,
	}
	price := benchPrice()
	cost := func(h int, x float64) float64 { return price[h] * x }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := dpsched.Schedule(a, 24, cost); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCEOptimizerBattery measures the cross-entropy battery-trajectory
// optimization on its production problem size (24 dimensions).
func BenchmarkCEOptimizerBattery(b *testing.B) {
	price := benchPrice()
	load := make([]float64, 24)
	pv := make([]float64, 24)
	for h := range load {
		load[h] = 1.2
		if h >= 10 && h < 16 {
			pv[h] = 2.5
		}
	}
	objective := func(x []float64) float64 {
		total, prev := 0.0, 2.0
		for t := 0; t < 24; t++ {
			y := load[t] - pv[t] + x[t] - prev
			if y > 0 {
				total += price[t] * y * y
			}
			prev = x[t]
		}
		return total
	}
	lo := make([]float64, 24)
	hi := make([]float64, 24)
	for i := range hi {
		hi[i] = 8
	}
	opts := ceopt.DefaultOptions()
	opts.Samples = 40
	opts.MaxIter = 25
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ceopt.Minimize(context.Background(), objective, lo, hi, nil, rng.New(uint64(i+1)), opts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Learning ablations ---------------------------------------------------

func benchTrainingSet(n int) ([][]float64, []float64) {
	s := rng.New(11)
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		a, c := s.Range(0, 5), s.Range(0, 5)
		x[i] = []float64{a, c}
		y[i] = math.Sin(a) + 0.5*c + s.Normal(0, 0.02)
	}
	return x, y
}

// BenchmarkSVRTrainLSSVM measures the default forecaster trainer (one dense
// linear solve).
func BenchmarkSVRTrainLSSVM(b *testing.B) {
	x, y := benchTrainingSet(150)
	opts := svr.DefaultLSSVMOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svr.TrainLSSVM(x, y, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSVRTrainEpsSVR measures the SMO-trained ε-SVR alternative.
func BenchmarkSVRTrainEpsSVR(b *testing.B) {
	x, y := benchTrainingSet(150)
	opts := svr.DefaultEpsSVROptions()
	opts.MaxSweeps = 60
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svr.TrainEpsSVR(x, y, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForecastTrainAware measures training the G(p, V, D) price
// forecaster on a week of history.
func BenchmarkForecastTrainAware(b *testing.B) {
	hist := benchHistory(b, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := forecast.Train(hist, forecast.ModeNetMeteringAware, forecast.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func benchHistory(b *testing.B, days int) tariff.History {
	b.Helper()
	form := tariff.DefaultFormation()
	var hist tariff.History
	src := rng.New(5)
	for d := 0; d < days; d++ {
		scale := src.Range(0.2, 1.0)
		demand := make(timeseries.Series, 24)
		ren := make(timeseries.Series, 24)
		for h := 0; h < 24; h++ {
			demand[h] = 60 + 40*math.Sin(float64(h)/24*2*math.Pi)
			if h >= 10 && h < 16 {
				ren[h] = 50 * scale
			}
		}
		price, err := form.Publish(demand, ren, 100, true, src)
		if err != nil {
			b.Fatal(err)
		}
		for h := 0; h < 24; h++ {
			hist.Append(price[h], ren[h], demand[h])
		}
	}
	return hist
}

// --- POMDP policy ablations ------------------------------------------------

func benchDetectionModel(b *testing.B) *pomdp.Model {
	b.Helper()
	params := detect.DefaultModelParams(100, 0.01, 0.3)
	params.CalibSamples = 1500
	m, err := detect.BuildModel(params)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkPolicyPBVI measures solving the detection POMDP with point-based
// value iteration (the faithful solver).
func BenchmarkPolicyPBVI(b *testing.B) {
	m := benchDetectionModel(b)
	opts := pomdp.DefaultPBVIOptions()
	opts.NumBeliefs = 60
	opts.Iterations = 30
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pomdp.SolvePBVI(context.Background(), m, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPolicyQMDP measures the fast QMDP approximation (ablation).
func BenchmarkPolicyQMDP(b *testing.B) {
	m := benchDetectionModel(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pomdp.SolveQMDP(context.Background(), m, 1e-9, 5000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBeliefUpdate measures the per-slot Bayesian filter step.
func BenchmarkBeliefUpdate(b *testing.B) {
	m := benchDetectionModel(b)
	belief := pomdp.UniformBelief(m.NumStates)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		belief, _ = m.Update(belief, i%2, i%m.NumObs)
	}
}

// BenchmarkModelCalibration measures the Monte-Carlo construction of the
// detection POMDP's T and Ω.
func BenchmarkModelCalibration(b *testing.B) {
	params := detect.DefaultModelParams(100, 0.01, 0.3)
	params.CalibSamples = 1000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := detect.BuildModel(params); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignStep measures the attack-campaign state process.
func BenchmarkCampaignStep(b *testing.B) {
	camp, err := attack.NewCampaign(500, 0.3, 5, 20, attack.ZeroWindow{From: 16, To: 17})
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		camp.Step(src)
		if i%48 == 47 {
			camp.Repair()
		}
	}
}

// --- Supervision curve (BENCH_supervise.json) -----------------------------

var (
	benchSupOut = flag.String("bench-supervise-out", "",
		"write the worker-processes-vs-wall-clock supervision curve to this JSON path (empty = skip TestWriteBenchSupervise)")
	benchSupShape = flag.String("bench-supervise-shape", "20x500",
		"FxN fleet shape (F communities of N meters) for the supervision curve")
	benchSupProcs = flag.String("bench-supervise-procs", "1,2,4",
		"comma-separated worker-process counts for the supervision curve")
)

// TestWriteBenchSupervise times full supervised fleet runs — cmd/nmfleet
// spawning one nmdetect worker process per community batch — at the shape
// given by -bench-supervise-shape across the -bench-supervise-procs process
// fan-outs, and writes BENCH_supervise.json-shaped output labelled with the
// execution environment (GOMAXPROCS, CPU count). Each point records wall
// clock plus the retried/failed batch counts from the merged report; a run
// with failed batches fails the harness, since the curve is only meaningful
// for clean runs. `make bench-supervise` records the paper shape (20x500 =
// 10k meters); `make bench-supervise-smoke` runs a tiny shape as a CI guard.
// Skipped unless -bench-supervise-out is set.
func TestWriteBenchSupervise(t *testing.T) {
	if *benchSupOut == "" {
		t.Skip("set -bench-supervise-out to record the supervision curve")
	}
	parts := strings.SplitN(strings.TrimSpace(*benchSupShape), "x", 2)
	if len(parts) != 2 {
		t.Fatalf("bad -bench-supervise-shape %q (want FxN)", *benchSupShape)
	}
	comms, err1 := strconv.Atoi(parts[0])
	size, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil || comms < 2 || size < 4 {
		t.Fatalf("bad -bench-supervise-shape %q (want FxN, F >= 2)", *benchSupShape)
	}
	var procsList []int
	for _, entry := range strings.Split(*benchSupProcs, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(entry))
		if err != nil || p < 1 {
			t.Fatalf("bad -bench-supervise-procs entry %q", entry)
		}
		procsList = append(procsList, p)
	}

	// The curve times the real binaries end to end: process spawn, worker
	// bootstrap, checkpoint writes, report merge.
	bin := t.TempDir()
	for _, b := range []struct{ out, pkg string }{
		{"nmfleet", "./cmd/nmfleet"},
		{"nmdetect", "./cmd/nmdetect"},
	} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(bin, b.out), b.pkg)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", b.out, err, out)
		}
	}

	const days, boot, sweeps = 2, 4, 2
	type point struct {
		Procs      int     `json:"procs"`
		WallMS     float64 `json:"wall_ms"`
		MSPerMeter float64 `json:"ms_per_meter"`
		Retried    int     `json:"retried"`
		Failed     int     `json:"failed"`
	}
	var curve []point
	for _, procs := range procsList {
		workdir := filepath.Join(t.TempDir(), "work")
		if err := os.Mkdir(workdir, 0o755); err != nil {
			t.Fatal(err)
		}
		reportPath := filepath.Join(filepath.Dir(workdir), "fleet.json")
		cmd := exec.Command(filepath.Join(bin, "nmfleet"),
			"-workdir", workdir,
			"-report", reportPath,
			"-worker-bin", filepath.Join(bin, "nmdetect"),
			"-n", strconv.Itoa(size),
			"-communities", strconv.Itoa(comms),
			"-days", strconv.Itoa(days),
			"-boot", strconv.Itoa(boot),
			"-sweeps", strconv.Itoa(sweeps),
			"-solver", "qmdp",
			"-seed", "42",
			"-batch-size", "1",
			"-procs", strconv.Itoa(procs),
			"-checkpoint-every", "1",
		)
		cmd.Stdout = io.Discard
		start := time.Now()
		if err := cmd.Run(); err != nil {
			t.Fatalf("procs=%d: nmfleet: %v", procs, err)
		}
		wall := time.Since(start)
		raw, err := os.ReadFile(reportPath)
		if err != nil {
			t.Fatal(err)
		}
		var rep fleet.Report
		if err := json.Unmarshal(raw, &rep); err != nil {
			t.Fatal(err)
		}
		if rep.Failed != 0 {
			t.Fatalf("procs=%d: %d batches failed; the curve only covers clean runs", procs, rep.Failed)
		}
		retried := 0
		for _, c := range rep.PerCommunity {
			if c.Status == fleet.StatusRetried {
				retried++
			}
		}
		p := point{
			Procs:      procs,
			WallMS:     float64(wall.Milliseconds()),
			MSPerMeter: float64(wall.Milliseconds()) / float64(comms*size),
			Retried:    retried,
			Failed:     rep.Failed,
		}
		curve = append(curve, p)
		t.Logf("%dx%d procs=%d: %s wall, %d retried", comms, size, procs, wall.Round(time.Millisecond), retried)
	}

	out := map[string]any{
		"description": "Worker-processes-vs-wall-clock curve for the supervised fleet: one full " +
			"cmd/nmfleet run per point (F communities of N meters, batch size 1, one nmdetect " +
			"worker process per batch, qmdp solver) at each -procs fan-out. Wall clock includes " +
			"process spawn, bootstrap, per-day checkpoints and the report merge; speedup across " +
			"procs tracks the host's free cores. Regenerate with `make bench-supervise`.",
		"shape":          fmt.Sprintf("%dx%d", comms, size),
		"total_meters":   comms * size,
		"monitor_days":   days,
		"bootstrap_days": boot,
		"go":             runtime.Version(),
		"goos":           runtime.GOOS,
		"goarch":         runtime.GOARCH,
		"gomaxprocs":     runtime.GOMAXPROCS(0),
		"num_cpu":        runtime.NumCPU(),
		"curve":          curve,
	}
	f, err := os.Create(*benchSupOut)
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("bench-supervise: wrote %d points to %s\n", len(curve), *benchSupOut)
}

// --- Serving curve (BENCH_serve.json) -------------------------------------

var (
	benchServeOut = flag.String("bench-serve-out", "",
		"write the concurrent-sessions-vs-readings/sec serving curve to this JSON path (empty = skip TestWriteBenchServe)")
	benchServeSessions = flag.String("bench-serve-sessions", "1,4,16",
		"comma-separated concurrent session counts for the serving curve")
	benchServeN = flag.Int("bench-serve-n", 8,
		"community size per session for the serving curve")
	benchServeDays = flag.Int("bench-serve-days", 3,
		"monitored days ingested per session for the serving curve")
)

// TestWriteBenchServe measures the nmserve daemon's sustained ingest rate:
// it starts the real binary over loopback HTTP, creates S concurrent
// sessions (bootstrap outside the timer — session creation is the offline
// phase), then times S client goroutines each streaming its session's full
// day horizon, and reports meter readings per second (S x N meters x 24
// slots x D days over wall clock). One daemon per point, default
// -checkpoint-every 1, so every acknowledged day pays its durability cost
// inside the timer — the number is the end-to-end serving rate, not an
// in-memory one. The curve asserts throughput does not collapse as sessions
// grow (>= 50% of the single-session rate; on a single-core runner extra
// sessions buy concurrency, not parallelism). `make bench-serve` records
// 1/4/16 sessions; `make bench-serve-smoke` is the CI guard. Skipped unless
// -bench-serve-out is set.
func TestWriteBenchServe(t *testing.T) {
	if *benchServeOut == "" {
		t.Skip("set -bench-serve-out to record the serving curve")
	}
	var sessList []int
	for _, entry := range strings.Split(*benchServeSessions, ",") {
		s, err := strconv.Atoi(strings.TrimSpace(entry))
		if err != nil || s < 1 {
			t.Fatalf("bad -bench-serve-sessions entry %q", entry)
		}
		sessList = append(sessList, s)
	}
	if *benchServeN < 3 || *benchServeDays < 1 {
		t.Fatalf("bad serve bench shape: n=%d days=%d", *benchServeN, *benchServeDays)
	}

	bin := filepath.Join(t.TempDir(), "nmserve")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/nmserve").CombinedOutput(); err != nil {
		t.Fatalf("building nmserve: %v\n%s", err, out)
	}

	post := func(url string, body []byte) (*http.Response, error) {
		return http.Post(url, "application/json", bytes.NewReader(body))
	}

	type point struct {
		Sessions       int     `json:"sessions"`
		WallMS         float64 `json:"wall_ms"`
		ReadingsPerSec float64 `json:"readings_per_sec"`
	}
	var curve []point
	for _, sessions := range sessList {
		state := t.TempDir()
		addrFile := filepath.Join(state, "bound.addr")
		cmd := exec.Command(bin, "-state", state, "-addr", "127.0.0.1:0", "-addr-file", addrFile, "-checkpoint-every", "1")
		var errb bytes.Buffer
		cmd.Stderr = &errb
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		defer func() {
			cmd.Process.Kill() //nolint:errcheck
			cmd.Wait()         //nolint:errcheck
		}()
		var base string
		for deadline := time.Now().Add(30 * time.Second); ; {
			if raw, err := os.ReadFile(addrFile); err == nil {
				base = "http://" + strings.TrimSpace(string(raw))
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("nmserve did not come up; stderr:\n%s", errb.String())
			}
			time.Sleep(20 * time.Millisecond)
		}

		// Untimed: create the sessions (each runs its offline bootstrap).
		ids := make([]string, sessions)
		for i := range ids {
			spec := scenario.Default(*benchServeN, uint64(1000+i))
			spec.Horizon.BootstrapDays = 4
			spec.Horizon.MonitorDays = *benchServeDays
			spec.Game.Sweeps = 2
			spec.Detector.Solver = "qmdp"
			ids[i] = fmt.Sprintf("bench-%d", i)
			body, err := json.Marshal(map[string]any{"id": ids[i], "scenario": spec})
			if err != nil {
				t.Fatal(err)
			}
			resp, err := post(base+"/v1/sessions", body)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			if resp.StatusCode != http.StatusCreated {
				t.Fatalf("create session %d: %d", i, resp.StatusCode)
			}
		}

		// Timed: every session streams its full horizon concurrently.
		var wg sync.WaitGroup
		errs := make(chan error, sessions)
		start := time.Now()
		for i := range ids {
			wg.Add(1)
			go func(id string) {
				defer wg.Done()
				for d := 0; d < *benchServeDays; d++ {
					resp, err := post(base+"/v1/sessions/"+id+"/days", []byte(fmt.Sprintf(`{"day":%d}`, d)))
					if err != nil {
						errs <- err
						return
					}
					io.Copy(io.Discard, resp.Body) //nolint:errcheck
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("session %s day %d: status %d", id, d, resp.StatusCode)
						return
					}
				}
			}(ids[i])
		}
		wg.Wait()
		wall := time.Since(start)
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		cmd.Process.Kill() //nolint:errcheck
		cmd.Wait()         //nolint:errcheck

		readings := float64(sessions**benchServeN*24**benchServeDays)
		p := point{
			Sessions:       sessions,
			WallMS:         float64(wall.Microseconds()) / 1e3,
			ReadingsPerSec: readings / wall.Seconds(),
		}
		curve = append(curve, p)
		t.Logf("sessions=%d: %s wall, %.0f readings/sec", sessions, wall.Round(time.Millisecond), p.ReadingsPerSec)
	}

	// Sanity asserts: more concurrent sessions must not collapse throughput.
	for i, p := range curve {
		if p.ReadingsPerSec <= 0 {
			t.Fatalf("sessions=%d: non-positive throughput", p.Sessions)
		}
		if i > 0 && p.ReadingsPerSec < 0.5*curve[0].ReadingsPerSec {
			t.Errorf("sessions=%d: throughput %.0f readings/sec fell below half the single-session rate %.0f",
				p.Sessions, p.ReadingsPerSec, curve[0].ReadingsPerSec)
		}
	}

	out := map[string]any{
		"description": "Concurrent-sessions-vs-ingest-rate curve for the nmserve daemon: one real " +
			"nmserve process per point over loopback HTTP, S sessions of N meters created untimed " +
			"(offline bootstrap), then S client goroutines each streaming D monitored days; " +
			"readings/sec = S x N x 24 x D over wall clock, with -checkpoint-every 1 so every " +
			"acknowledged day is durable inside the timer. Regenerate with `make bench-serve`.",
		"community_n":    *benchServeN,
		"monitor_days":   *benchServeDays,
		"bootstrap_days": 4,
		"go":             runtime.Version(),
		"goos":           runtime.GOOS,
		"goarch":         runtime.GOARCH,
		"gomaxprocs":     runtime.GOMAXPROCS(0),
		"num_cpu":        runtime.NumCPU(),
		"curve":          curve,
	}
	f, err := os.Create(*benchServeOut)
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("bench-serve: wrote %d points to %s\n", len(curve), *benchServeOut)
}
